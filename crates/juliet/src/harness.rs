//! Detection harness: runs generated cases under an execution mode and
//! tallies detections, misses and false positives (the §5.1 claim is
//! all-bad-detected / all-good-passed).

use crate::gen::{CaseKind, JulietCase};
use ifp_plancache::PlanCache;
use ifp_trace::{ForensicReport, TraceConfig};
use ifp_vm::{run, ExecTier, Mode, VmConfig, VmError};
use std::fmt;

/// What happened when a case ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// Ran to completion.
    Completed,
    /// Stopped by a spatial-safety trap (poison or bounds) — the clean
    /// detection the paper's functional evaluation counts.
    Detected,
    /// Stopped by a trap that is *not* a safety detection — typically a
    /// page fault after a wild access escaped the checks. The program
    /// crashed, but the defense cannot claim it.
    TrappedOther,
    /// Stopped by something else (harness bug).
    Errored,
}

/// Runs one case under `mode`.
#[must_use]
pub fn run_case(case: &JulietCase, mode: Mode) -> CaseOutcome {
    run_case_traced(case, mode, TraceConfig::off()).0
}

/// [`run_case`] on a chosen execution tier through an optional shared
/// [`PlanCache`]. A suite replays each case program under several modes
/// (and benchmark reps), so the cache collapses the repeated
/// validate/analyze/decode/fuse work to at most two artifacts per case
/// per tier; outcomes are bit-identical with or without it
/// (golden-gated).
#[must_use]
pub fn run_case_cached(
    case: &JulietCase,
    mode: Mode,
    tier: ExecTier,
    cache: Option<&PlanCache>,
) -> CaseOutcome {
    run_case_inner(case, mode, TraceConfig::off(), tier, cache).0
}

/// [`run_case`] with event tracing: when `trace` enables any category and
/// the case traps, the trap's forensic reconstruction rides along.
#[must_use]
pub fn run_case_traced(
    case: &JulietCase,
    mode: Mode,
    trace: TraceConfig,
) -> (CaseOutcome, Option<Box<ForensicReport>>) {
    run_case_inner(case, mode, trace, ExecTier::default(), None)
}

fn run_case_inner(
    case: &JulietCase,
    mode: Mode,
    trace: TraceConfig,
    tier: ExecTier,
    cache: Option<&PlanCache>,
) -> (CaseOutcome, Option<Box<ForensicReport>>) {
    let mut cfg = VmConfig::with_mode(mode);
    cfg.fuel = 50_000_000;
    cfg.trace = trace;
    cfg.exec_tier = tier;
    let result = match cache {
        Some(c) => c.run(&case.program, &cfg),
        None => run(&case.program, &cfg),
    };
    match result {
        Ok(_) => (CaseOutcome::Completed, None),
        Err(VmError::Trap {
            trap, forensics, ..
        }) => {
            let outcome = if trap.is_safety_violation() {
                CaseOutcome::Detected
            } else {
                CaseOutcome::TrappedOther
            };
            (outcome, forensics)
        }
        Err(_) => (CaseOutcome::Errored, None),
    }
}

/// Aggregate results over a suite.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuiteResult {
    /// Bad cases detected (true positives).
    pub detected: usize,
    /// Bad cases that completed undetected (misses).
    pub missed: Vec<String>,
    /// Good cases that completed (true negatives).
    pub passed: usize,
    /// Good cases that trapped (false positives).
    pub false_positives: Vec<String>,
    /// Cases stopped by a non-safety trap (wild page fault): the program
    /// crashed, but not at a check — not a detection the defense can
    /// claim, and not a miss either.
    pub trapped_other: Vec<String>,
    /// Cases that errored outside the detection model.
    pub errors: Vec<String>,
}

impl SuiteResult {
    /// Total cases examined.
    #[must_use]
    pub fn total(&self) -> usize {
        self.detected
            + self.missed.len()
            + self.passed
            + self.false_positives.len()
            + self.trapped_other.len()
            + self.errors.len()
    }

    /// The paper's pass criterion: every bad case detected *at a check*,
    /// every good case passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.missed.is_empty()
            && self.false_positives.is_empty()
            && self.trapped_other.is_empty()
            && self.errors.is_empty()
    }
}

impl fmt::Display for SuiteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cases: {} detected, {} passed, {} missed, {} false positives, \
             {} other traps, {} errors",
            self.total(),
            self.detected,
            self.passed,
            self.missed.len(),
            self.false_positives.len(),
            self.trapped_other.len(),
            self.errors.len()
        )
    }
}

/// Runs a whole suite under `mode` on up to `workers` threads.
///
/// Each case is an independent simulation; outcomes merge in case order,
/// so the result is identical for any worker count.
#[must_use]
pub fn run_suite_with_workers(cases: &[JulietCase], mode: Mode, workers: usize) -> SuiteResult {
    run_suite_with_workers_cached(cases, mode, workers, ExecTier::default(), None)
}

/// [`run_suite_with_workers`] on a chosen execution tier through an
/// optional shared [`PlanCache`]. The cache is shared across workers
/// (it is `Sync`); results stay identical for any worker count and any
/// cache state — only host wall-clock changes.
#[must_use]
pub fn run_suite_with_workers_cached(
    cases: &[JulietCase],
    mode: Mode,
    workers: usize,
    tier: ExecTier,
    cache: Option<&PlanCache>,
) -> SuiteResult {
    let outcomes = ifp_testutil::par_map(cases, workers, |case| {
        run_case_cached(case, mode, tier, cache)
    });
    let mut out = SuiteResult::default();
    for (case, outcome) in cases.iter().zip(outcomes) {
        match (case.kind, outcome) {
            (CaseKind::Bad, CaseOutcome::Detected) => out.detected += 1,
            (CaseKind::Bad, CaseOutcome::Completed) => out.missed.push(case.id.clone()),
            (CaseKind::Good, CaseOutcome::Completed) => out.passed += 1,
            (CaseKind::Good, CaseOutcome::Detected) => {
                out.false_positives.push(case.id.clone());
            }
            (_, CaseOutcome::TrappedOther) => out.trapped_other.push(case.id.clone()),
            (_, CaseOutcome::Errored) => out.errors.push(case.id.clone()),
        }
    }
    out
}

/// [`run_suite_with_workers`] on a single thread.
#[must_use]
pub fn run_suite(cases: &[JulietCase], mode: Mode) -> SuiteResult {
    run_suite_with_workers(cases, mode, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::all_cases;
    use ifp_vm::AllocatorKind;

    #[test]
    fn instrumented_detects_all_bad_and_passes_all_good() {
        let cases = all_cases();
        for alloc in [AllocatorKind::Wrapped, AllocatorKind::Subheap] {
            let r = run_suite(&cases, Mode::instrumented(alloc));
            assert!(
                r.is_clean(),
                "{alloc}: {r}\nmissed: {:?}\nfalse positives: {:?}\nerrors: {:?}",
                r.missed,
                r.false_positives,
                r.errors
            );
            assert_eq!(r.detected, cases.len() / 2);
        }
    }

    #[test]
    fn parallel_suite_is_identical_to_single_thread() {
        // The sweep determinism invariant: fan-out changes wall-clock
        // only. SuiteResult derives Eq, so this compares every field,
        // including the order of the id lists.
        let cases = all_cases();
        for mode in [Mode::Baseline, Mode::instrumented(AllocatorKind::Subheap)] {
            let one = run_suite_with_workers(&cases, mode, 1);
            for workers in [2, 5] {
                let many = run_suite_with_workers(&cases, mode, workers);
                assert_eq!(one, many, "{mode} diverged at {workers} workers");
            }
        }
    }

    #[test]
    fn cached_suite_matches_fresh_on_both_tiers() {
        // Warm-cache replay must be outcome-identical to fresh compiles,
        // across tiers and worker counts (SuiteResult derives Eq).
        let cases: Vec<_> = all_cases().into_iter().take(24).collect();
        let mode = Mode::instrumented(AllocatorKind::Subheap);
        let fresh = run_suite(&cases, mode);
        let cache = PlanCache::new();
        for tier in [ExecTier::Interp, ExecTier::Jit] {
            for workers in [1, 4] {
                let cached =
                    run_suite_with_workers_cached(&cases, mode, workers, tier, Some(&cache));
                assert_eq!(fresh, cached, "{tier:?} diverged at {workers} workers");
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0, "warm replay must hit: {s:?}");
    }

    #[test]
    fn baseline_passes_good_cases() {
        let cases = all_cases();
        let r = run_suite(&cases, Mode::Baseline);
        assert!(r.false_positives.is_empty(), "{:?}", r.false_positives);
        assert_eq!(r.passed, cases.len() / 2);
        // The baseline misses most overflows (they land in padding or
        // allocator slack) — that asymmetry *is* the motivation.
        assert!(!r.missed.is_empty());
    }

    #[test]
    fn no_promote_misses_loaded_flow_cases() {
        let cases = all_cases();
        let r = run_suite(
            &cases,
            Mode::Instrumented {
                allocator: AllocatorKind::Subheap,
                no_promote: true,
            },
        );
        assert!(
            !r.missed.is_empty(),
            "the no-promote ablation must lose detection coverage"
        );
        assert!(r.false_positives.is_empty());
    }
}
