//! Case generation.

use ifp_compiler::{FnBuilder, Operand, Program, ProgramBuilder, Reg, TypeId};

/// Array length used by every case.
pub const N: i64 = 10;

/// The spatial-error class of a case (maps onto Juliet CWE numbers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cwe {
    /// Write one past the upper bound (CWE-121 on stack, CWE-122 on heap).
    OverflowWrite,
    /// Write below the lower bound (CWE-124).
    Underwrite,
    /// Read past the upper bound (CWE-126).
    Overread,
    /// Read below the lower bound (CWE-127).
    Underread,
    /// Intra-object overflow write: past a struct member, inside the
    /// object (the paper's Listing 1).
    IntraObjectWrite,
    /// Intra-object overread.
    IntraObjectRead,
}

impl Cwe {
    /// The Juliet CWE number for this error at the given site.
    #[must_use]
    pub fn number(self, site: Site) -> u32 {
        match self {
            Cwe::OverflowWrite | Cwe::IntraObjectWrite => match site {
                Site::Stack => 121,
                _ => 122,
            },
            Cwe::Underwrite => 124,
            Cwe::Overread | Cwe::IntraObjectRead => 126,
            Cwe::Underread => 127,
        }
    }

    /// Whether the faulting access is a read.
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, Cwe::Overread | Cwe::Underread | Cwe::IntraObjectRead)
    }

    /// The in-bounds and out-of-bounds indices for this error class.
    #[must_use]
    pub fn indices(self) -> (i64, i64) {
        match self {
            Cwe::OverflowWrite | Cwe::Overread | Cwe::IntraObjectWrite | Cwe::IntraObjectRead => {
                (N - 1, N)
            }
            Cwe::Underwrite | Cwe::Underread => (0, -1),
        }
    }

    /// Stable serialization name (the corpus-file vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Cwe::OverflowWrite => "overflow_write",
            Cwe::Underwrite => "underwrite",
            Cwe::Overread => "overread",
            Cwe::Underread => "underread",
            Cwe::IntraObjectWrite => "intra_object_write",
            Cwe::IntraObjectRead => "intra_object_read",
        }
    }

    /// Parses a [`Cwe::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Cwe> {
        ALL_CWES.into_iter().find(|c| c.name() == s)
    }
}

/// Every error class, in serialization order.
pub const ALL_CWES: [Cwe; 6] = [
    Cwe::OverflowWrite,
    Cwe::Underwrite,
    Cwe::Overread,
    Cwe::Underread,
    Cwe::IntraObjectWrite,
    Cwe::IntraObjectRead,
];

/// Where the target object lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// A stack array.
    Stack,
    /// A heap allocation.
    Heap,
    /// A global array.
    Global,
}

impl Site {
    /// All sites.
    pub const ALL: [Site; 3] = [Site::Stack, Site::Heap, Site::Global];

    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::Stack => "stack",
            Site::Heap => "heap",
            Site::Global => "global",
        }
    }

    /// Parses a [`Site::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|v| v.name() == s)
    }
}

/// The data-flow shape between index computation and access (Juliet's
/// flow-variant dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Single access at a runtime index.
    Direct,
    /// Access inside a counted loop whose bound is off by one in the bad
    /// case.
    Loop,
    /// The address is formed by two chained pointer-arithmetic steps.
    PtrArith,
    /// The pointer and index flow through a function call.
    CallFlow,
    /// The pointer flows through memory (a global cell) and is re-loaded
    /// in another function — the promote path.
    LoadedFlow,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 5] = [
        Variant::Direct,
        Variant::Loop,
        Variant::PtrArith,
        Variant::CallFlow,
        Variant::LoadedFlow,
    ];

    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Direct => "direct",
            Variant::Loop => "loop",
            Variant::PtrArith => "ptr_arith",
            Variant::CallFlow => "call_flow",
            Variant::LoadedFlow => "loaded_flow",
        }
    }

    /// Parses a [`Variant::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.name() == s)
    }
}

/// Good (in-bounds only) or bad (good path then out-of-bounds path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaseKind {
    /// Every access in bounds; must run to completion.
    Good,
    /// Ends with an out-of-bounds access; must be detected.
    Bad,
}

impl CaseKind {
    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CaseKind::Good => "good",
            CaseKind::Bad => "bad",
        }
    }

    /// Parses a [`CaseKind::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<CaseKind> {
        [CaseKind::Good, CaseKind::Bad]
            .into_iter()
            .find(|v| v.name() == s)
    }
}

/// One generated test case.
#[derive(Debug)]
pub struct JulietCase {
    /// Human-readable identifier (mirrors Juliet naming).
    pub id: String,
    /// Error class.
    pub cwe: Cwe,
    /// Object site.
    pub site: Site,
    /// Data-flow variant.
    pub variant: Variant,
    /// Good or bad.
    pub kind: CaseKind,
    /// The program.
    pub program: Program,
}

/// Emits the per-variant access code. `arr_ty` is the static type behind
/// the pointer (`i32` element indexing works for both array and element
/// pointers).
#[allow(clippy::too_many_arguments)]
fn emit_access(
    f: &mut FnBuilder,
    ptr: Reg,
    base_ty: TypeId,
    i32t: TypeId,
    idx: i64,
    cwe: Cwe,
    variant: Variant,
) {
    let do_access = |f: &mut FnBuilder, at: Reg| {
        let cell = f.index_addr(ptr, base_ty, at);
        if cwe.is_read() {
            let v = f.load(cell, i32t);
            f.print_int(v);
        } else {
            f.store(cell, 7i64, i32t);
        }
    };
    match variant {
        Variant::Direct | Variant::CallFlow | Variant::LoadedFlow => {
            // CallFlow/LoadedFlow route `ptr` differently but access the
            // same way once it arrives here.
            let at = f.mov(idx);
            do_access(f, at);
        }
        Variant::Loop => {
            if idx >= 0 {
                // Ascending: 0..=idx.
                f.for_loop(0i64, idx + 1, |f, i| do_access(f, i));
            } else {
                // Descending: N-1 down to idx.
                let i = f.mov(N - 1);
                f.count_down_loop(i, idx, |f, i| do_access(f, i));
            }
        }
        Variant::PtrArith => {
            let mid = f.index_addr(ptr, base_ty, 5i64);
            let k = f.mov(idx - 5);
            let cell = f.index_addr(mid, i32t, k);
            if cwe.is_read() {
                let v = f.load(cell, i32t);
                f.print_int(v);
            } else {
                f.store(cell, 7i64, i32t);
            }
        }
    }
}

fn build_flat_case(cwe: Cwe, site: Site, variant: Variant, kind: CaseKind) -> Program {
    let mut pb = ProgramBuilder::new();
    let i32t = pb.types.int32();
    let vp = pb.types.void_ptr();
    let arr = pb.types.array(i32t, N as u32);
    let data_g = (site == Site::Global).then(|| pb.global("g_data", arr));
    let cell_g = pb.global("g_ptr", vp);

    // Flow helpers.
    let access_fn = |pb: &mut ProgramBuilder, name: &str, is_read: bool| {
        let mut h = pb.func(name, 2);
        let p = h.param(0);
        let at = h.param(1);
        let cell = h.index_addr(p, i32t, at);
        if is_read {
            let v = h.load(cell, i32t);
            h.print_int(v);
        } else {
            h.store(cell, 7i64, i32t);
        }
        h.ret(None);
        pb.finish_func(h);
    };
    let flow_fn = |pb: &mut ProgramBuilder, name: &str, is_read: bool, cell_g: usize| {
        let mut h = pb.func(name, 1);
        let at = h.param(0);
        let gp = h.addr_of_global(cell_g);
        let p = h.load(gp, vp); // the promote path
        let cell = h.index_addr(p, i32t, at);
        if is_read {
            let v = h.load(cell, i32t);
            h.print_int(v);
        } else {
            h.store(cell, 7i64, i32t);
        }
        h.ret(None);
        pb.finish_func(h);
    };
    if variant == Variant::CallFlow {
        access_fn(&mut pb, "access_helper", cwe.is_read());
    }
    if variant == Variant::LoadedFlow {
        flow_fn(&mut pb, "flow_helper", cwe.is_read(), cell_g);
    }

    let mut m = pb.func("main", 0);
    let (ptr, base_ty) = match site {
        Site::Stack => (m.alloca(arr), arr),
        Site::Heap => (m.malloc_n(i32t, N), i32t),
        Site::Global => (m.addr_of_global(data_g.expect("global site")), arr),
    };
    // Initialize so reads are defined.
    for k in 0..N {
        let cell = m.index_addr(ptr, base_ty, k);
        m.store(cell, k, i32t);
    }

    let (good_idx, bad_idx) = cwe.indices();
    let run = |m: &mut FnBuilder, idx: i64| match variant {
        Variant::CallFlow => {
            let at = m.mov(idx);
            m.call_void("access_helper", vec![Operand::Reg(ptr), Operand::Reg(at)]);
        }
        Variant::LoadedFlow => {
            let gp = m.addr_of_global(cell_g);
            m.store(gp, ptr, vp);
            let at = m.mov(idx);
            m.call_void("flow_helper", vec![Operand::Reg(at)]);
        }
        _ => emit_access(m, ptr, base_ty, i32t, idx, cwe, variant),
    };
    // The good path always runs first (Juliet's main calls good then bad).
    run(&mut m, good_idx);
    if kind == CaseKind::Bad {
        run(&mut m, bad_idx);
    }
    m.print_int(1i64); // completion marker
    if site == Site::Heap {
        m.free(ptr);
    }
    m.ret(Some(Operand::Imm(0)));
    pb.finish_func(m);
    pb.build()
}

fn build_intra_case(cwe: Cwe, site: Site, kind: CaseKind) -> Program {
    let mut pb = ProgramBuilder::new();
    let i32t = pb.types.int32();
    let vp = pb.types.void_ptr();
    let arr = pb.types.array(i32t, N as u32);
    let s = pb
        .types
        .struct_type("S", &[("vulnerable", arr), ("sensitive", arr)]);
    let cell_g = pb.global("g_ptr", vp);

    let mut h = pb.func("flow_helper", 1);
    let at = h.param(0);
    let gp = h.addr_of_global(cell_g);
    let p = h.load(gp, vp); // promote narrows to `vulnerable`
    let cell = h.index_addr(p, arr, at);
    if cwe.is_read() {
        let v = h.load(cell, i32t);
        h.print_int(v);
    } else {
        h.store(cell, 7i64, i32t);
    }
    h.ret(None);
    pb.finish_func(h);

    let mut m = pb.func("main", 0);
    let obj = match site {
        Site::Stack => m.alloca(s),
        _ => m.malloc(s),
    };
    // Initialize both members.
    for field in 0..2u32 {
        let fa = m.field_addr(obj, s, field);
        for k in 0..N {
            let cell = m.index_addr(fa, arr, k);
            m.store(cell, k, i32t);
        }
    }
    let vuln = m.field_addr(obj, s, 0);
    let gp = m.addr_of_global(cell_g);
    m.store(gp, vuln, vp);

    let (good_idx, bad_idx) = cwe.indices();
    let at = m.mov(good_idx);
    m.call_void("flow_helper", vec![Operand::Reg(at)]);
    if kind == CaseKind::Bad {
        let at = m.mov(bad_idx);
        m.call_void("flow_helper", vec![Operand::Reg(at)]);
    }
    m.print_int(1i64);
    m.ret(Some(Operand::Imm(0)));
    pb.finish_func(m);
    pb.build()
}

/// Generates the whole suite.
#[must_use]
pub fn all_cases() -> Vec<JulietCase> {
    let mut out = Vec::new();
    let flat_cwes = [
        Cwe::OverflowWrite,
        Cwe::Underwrite,
        Cwe::Overread,
        Cwe::Underread,
    ];
    let sites = [Site::Stack, Site::Heap, Site::Global];
    for cwe in flat_cwes {
        for site in sites {
            for variant in Variant::ALL {
                for kind in [CaseKind::Good, CaseKind::Bad] {
                    let id = format!(
                        "CWE{}_{:?}_{:?}_{:?}_{}",
                        cwe.number(site),
                        cwe,
                        site,
                        variant,
                        if kind == CaseKind::Good {
                            "good"
                        } else {
                            "bad"
                        }
                    );
                    out.push(JulietCase {
                        id,
                        cwe,
                        site,
                        variant,
                        kind,
                        program: build_flat_case(cwe, site, variant, kind),
                    });
                }
            }
        }
    }
    for cwe in [Cwe::IntraObjectWrite, Cwe::IntraObjectRead] {
        for site in [Site::Stack, Site::Heap] {
            for kind in [CaseKind::Good, CaseKind::Bad] {
                let id = format!(
                    "CWE{}_{:?}_{:?}_LoadedFlow_{}",
                    cwe.number(site),
                    cwe,
                    site,
                    if kind == CaseKind::Good {
                        "good"
                    } else {
                        "bad"
                    }
                );
                out.push(JulietCase {
                    id,
                    cwe,
                    site,
                    variant: Variant::LoadedFlow,
                    kind,
                    program: build_intra_case(cwe, site, kind),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in ALL_CWES {
            assert_eq!(Cwe::from_name(c.name()), Some(c));
        }
        for s in Site::ALL {
            assert_eq!(Site::from_name(s.name()), Some(s));
        }
        for v in Variant::ALL {
            assert_eq!(Variant::from_name(v.name()), Some(v));
        }
        for k in [CaseKind::Good, CaseKind::Bad] {
            assert_eq!(CaseKind::from_name(k.name()), Some(k));
        }
        assert_eq!(Cwe::from_name("bogus"), None);
    }

    #[test]
    fn suite_has_expected_shape() {
        let cases = all_cases();
        assert_eq!(cases.len(), 4 * 3 * 5 * 2 + 2 * 2 * 2);
        let bad = cases.iter().filter(|c| c.kind == CaseKind::Bad).count();
        assert_eq!(bad, cases.len() / 2);
        for c in &cases {
            assert!(c.program.validate().is_ok(), "{} invalid", c.id);
        }
    }
}
