//! Juliet-style functional evaluation (paper §5.1).
//!
//! The paper runs the NIST Juliet 1.3 C/C++ suite's out-of-bounds
//! categories — stack overflow (CWE-121), heap overflow (CWE-122),
//! underwrite (CWE-124), overread (CWE-126), underread (CWE-127) — and
//! reports that In-Fat Pointer detects every vulnerable case while
//! passing every good case. The suite itself is not redistributable
//! here, so this crate *generates* cases with the same structure: each
//! case is a program with a `good` path (in-bounds) and a `bad` path
//! (out-of-bounds), across the data-flow variants Juliet uses (direct
//! index, loop bound, pointer arithmetic, flow through a call, flow
//! through memory), over heap, stack and global objects, plus
//! intra-object variants for the subobject-granularity claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod temporal;

pub use gen::{all_cases, CaseKind, Cwe, JulietCase, Site, Variant, ALL_CWES};
pub use harness::{
    run_case, run_case_cached, run_case_traced, run_suite, run_suite_with_workers,
    run_suite_with_workers_cached, CaseOutcome, SuiteResult,
};
pub use temporal::{
    run_temporal_case, run_temporal_suite, run_temporal_suite_with_workers, temporal_cases,
    TemporalCase, TemporalCwe, TemporalOutcome,
};
