//! Temporal case families: CWE-416 (Use After Free) and CWE-415
//! (Double Free), the Juliet categories the spatial suite leaves out.
//!
//! Like the spatial generator, each family is emitted as good/bad pairs
//! across data-flow variants (direct use, flow through a call, flow
//! through memory — the promote path). The cases are heap-only (both
//! CWEs are heap lifetimes by definition) and are run under an explicit
//! [`TemporalPolicy`]: the detection claim is that every enforcing
//! policy catches every bad case *at the temporal check* (no refill
//! happens between free and use, so the revoked-region check is
//! deterministic for key-check, tag-cycle and quarantine alike) while
//! every good case completes untouched — including under `Off`, which
//! must detect nothing.

use crate::gen::{CaseKind, Variant};
use crate::harness::SuiteResult;
use ifp_compiler::{Operand, Program, ProgramBuilder};
use ifp_hw::Trap;
use ifp_temporal::TemporalPolicy;
use ifp_trace::TemporalKind;
use ifp_vm::{run, Mode, VmConfig, VmError};

/// The temporal-error class of a case (maps onto Juliet CWE numbers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TemporalCwe {
    /// Use of heap memory after it was freed (CWE-416).
    UseAfterFree,
    /// The same allocation freed twice (CWE-415).
    DoubleFree,
}

impl TemporalCwe {
    /// Both temporal error classes, in serialization order.
    pub const ALL: [TemporalCwe; 2] = [TemporalCwe::UseAfterFree, TemporalCwe::DoubleFree];

    /// The Juliet CWE number.
    #[must_use]
    pub fn number(self) -> u32 {
        match self {
            TemporalCwe::UseAfterFree => 416,
            TemporalCwe::DoubleFree => 415,
        }
    }

    /// The trap classification a bad case of this class must raise.
    #[must_use]
    pub fn kind(self) -> TemporalKind {
        match self {
            TemporalCwe::UseAfterFree => TemporalKind::UseAfterFree,
            TemporalCwe::DoubleFree => TemporalKind::DoubleFree,
        }
    }

    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TemporalCwe::UseAfterFree => "use_after_free",
            TemporalCwe::DoubleFree => "double_free",
        }
    }

    /// Parses a [`TemporalCwe::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<TemporalCwe> {
        TemporalCwe::ALL.into_iter().find(|c| c.name() == s)
    }

    /// The data-flow variants this class is generated across. Double
    /// frees have no memory-round-trip variant: the free operand is the
    /// allocation base either way, so `LoadedFlow` would not change
    /// which check fires.
    #[must_use]
    pub fn variants(self) -> &'static [Variant] {
        match self {
            TemporalCwe::UseAfterFree => &[Variant::Direct, Variant::CallFlow, Variant::LoadedFlow],
            TemporalCwe::DoubleFree => &[Variant::Direct, Variant::CallFlow],
        }
    }
}

/// One generated temporal test case.
#[derive(Debug)]
pub struct TemporalCase {
    /// Human-readable identifier (mirrors Juliet naming).
    pub id: String,
    /// Error class.
    pub cwe: TemporalCwe,
    /// Data-flow variant.
    pub variant: Variant,
    /// Good or bad.
    pub kind: CaseKind,
    /// The program.
    pub program: Program,
}

/// Builds one case's program.
///
/// Every program opens with a never-freed ballast allocation of the
/// same type, so the allocator block backing the target stays mapped
/// after the free — stale-use outcomes are then a function of the
/// temporal policy, not of page liveness (the subheap releases empty
/// blocks). No allocation happens between the free and the stale use,
/// so the freed chunk is never reused and the revoked-region check is
/// deterministic under every enforcing policy.
fn build_case(cwe: TemporalCwe, variant: Variant, kind: CaseKind) -> Program {
    let mut pb = ProgramBuilder::new();
    let i64t = pb.types.int64();
    let vp = pb.types.void_ptr();
    let node = pb.types.struct_type("Node", &[("a", i64t), ("b", i64t)]);
    let cell_g = (variant == Variant::LoadedFlow).then(|| pb.global("g_ptr", vp));

    if cwe == TemporalCwe::UseAfterFree && variant == Variant::CallFlow {
        let mut h = pb.func("use_helper", 1);
        let p = h.param(0);
        let v = h.load(p, i64t);
        h.print_int(v);
        h.ret(None);
        pb.finish_func(h);
    }
    if cwe == TemporalCwe::UseAfterFree && variant == Variant::LoadedFlow {
        let cell_g = cell_g.expect("loaded flow has a cell");
        let mut h = pb.func("use_helper", 0);
        let gp = h.addr_of_global(cell_g);
        let p = h.load(gp, vp); // the promote path
        let v = h.load(p, i64t);
        h.print_int(v);
        h.ret(None);
        pb.finish_func(h);
    }
    if cwe == TemporalCwe::DoubleFree && variant == Variant::CallFlow {
        let mut h = pb.func("free_helper", 1);
        let p = h.param(0);
        h.free(p);
        h.ret(None);
        pb.finish_func(h);
    }

    let mut m = pb.func("main", 0);
    let ballast = m.malloc(node);
    let p = m.malloc(node);
    m.store(p, 5i64, i64t);
    if let Some(cell_g) = cell_g {
        let gp = m.addr_of_global(cell_g);
        m.store(gp, p, vp);
    }

    let use_p = |m: &mut ifp_compiler::FnBuilder| match variant {
        Variant::CallFlow => m.call_void("use_helper", vec![Operand::Reg(p)]),
        Variant::LoadedFlow => m.call_void("use_helper", vec![]),
        _ => {
            let v = m.load(p, i64t);
            m.print_int(v);
        }
    };
    let free_p = |m: &mut ifp_compiler::FnBuilder| match variant {
        Variant::CallFlow => m.call_void("free_helper", vec![Operand::Reg(p)]),
        _ => m.free(p),
    };

    match cwe {
        TemporalCwe::UseAfterFree => {
            // Good: use while live, then free. Bad: free, then use.
            if kind == CaseKind::Good {
                use_p(&mut m);
                m.free(p);
            } else {
                m.free(p);
                use_p(&mut m);
            }
        }
        TemporalCwe::DoubleFree => {
            let v = m.load(p, i64t);
            m.print_int(v);
            free_p(&mut m);
            if kind == CaseKind::Bad {
                free_p(&mut m);
            }
        }
    }
    m.print_int(1i64); // completion marker
    m.free(ballast);
    m.ret(Some(Operand::Imm(0)));
    pb.finish_func(m);
    pb.build()
}

/// Generates the temporal suite: good/bad pairs over every class and
/// its data-flow variants.
#[must_use]
pub fn temporal_cases() -> Vec<TemporalCase> {
    let mut out = Vec::new();
    for cwe in TemporalCwe::ALL {
        for &variant in cwe.variants() {
            for kind in [CaseKind::Good, CaseKind::Bad] {
                let id = format!(
                    "CWE{}_{:?}_Heap_{:?}_{}",
                    cwe.number(),
                    cwe,
                    variant,
                    kind.name()
                );
                out.push(TemporalCase {
                    id,
                    cwe,
                    variant,
                    kind,
                    program: build_case(cwe, variant, kind),
                });
            }
        }
    }
    out
}

/// What happened when a temporal case ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalOutcome {
    /// Ran to completion.
    Completed,
    /// Stopped by a temporal trap of the case's own class — the clean
    /// detection the suite counts.
    Detected,
    /// Stopped by any other trap (spatial, page fault, or a temporal
    /// trap of the wrong class): a crash the defense cannot claim.
    TrappedOther,
    /// Stopped outside the trap model (allocator error, harness bug).
    Errored,
}

/// Runs one case under `mode` with temporal `policy`.
#[must_use]
pub fn run_temporal_case(
    case: &TemporalCase,
    mode: Mode,
    policy: TemporalPolicy,
) -> TemporalOutcome {
    let mut cfg = VmConfig::with_mode(mode);
    cfg.fuel = 50_000_000;
    cfg.temporal = policy;
    match run(&case.program, &cfg) {
        Ok(_) => TemporalOutcome::Completed,
        Err(VmError::Trap {
            trap: Trap::Temporal { kind, .. },
            ..
        }) if kind == case.cwe.kind() => TemporalOutcome::Detected,
        Err(VmError::Trap { .. }) => TemporalOutcome::TrappedOther,
        Err(_) => TemporalOutcome::Errored,
    }
}

/// Runs the whole temporal suite under `mode` with `policy`, tallying
/// with the same [`SuiteResult`] vocabulary as the spatial harness.
#[must_use]
pub fn run_temporal_suite(
    cases: &[TemporalCase],
    mode: Mode,
    policy: TemporalPolicy,
) -> SuiteResult {
    run_temporal_suite_with_workers(cases, mode, policy, 1)
}

/// [`run_temporal_suite`] on up to `workers` threads; outcomes merge in
/// case order, so the result is identical for any worker count.
#[must_use]
pub fn run_temporal_suite_with_workers(
    cases: &[TemporalCase],
    mode: Mode,
    policy: TemporalPolicy,
    workers: usize,
) -> SuiteResult {
    let outcomes =
        ifp_testutil::par_map(cases, workers, |case| run_temporal_case(case, mode, policy));
    let mut out = SuiteResult::default();
    for (case, outcome) in cases.iter().zip(outcomes) {
        match (case.kind, outcome) {
            (CaseKind::Bad, TemporalOutcome::Detected) => out.detected += 1,
            (CaseKind::Bad, TemporalOutcome::Completed) => out.missed.push(case.id.clone()),
            (CaseKind::Good, TemporalOutcome::Completed) => out.passed += 1,
            (CaseKind::Good, TemporalOutcome::Detected) => {
                out.false_positives.push(case.id.clone());
            }
            (_, TemporalOutcome::TrappedOther) => out.trapped_other.push(case.id.clone()),
            (_, TemporalOutcome::Errored) => out.errors.push(case.id.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifp_vm::AllocatorKind;

    #[test]
    fn names_round_trip() {
        for c in TemporalCwe::ALL {
            assert_eq!(TemporalCwe::from_name(c.name()), Some(c));
        }
        assert_eq!(TemporalCwe::from_name("bogus"), None);
    }

    #[test]
    fn suite_has_expected_shape() {
        let cases = temporal_cases();
        // 3 UAF variants + 2 DF variants, good/bad each.
        assert_eq!(cases.len(), (3 + 2) * 2);
        let bad = cases.iter().filter(|c| c.kind == CaseKind::Bad).count();
        assert_eq!(bad, cases.len() / 2);
        for c in &cases {
            assert!(c.program.validate().is_ok(), "{} invalid", c.id);
        }
    }

    #[test]
    fn every_enforcing_policy_detects_all_bad_and_passes_all_good() {
        let cases = temporal_cases();
        for alloc in [AllocatorKind::Wrapped, AllocatorKind::Subheap] {
            for policy in TemporalPolicy::ENFORCING {
                let r = run_temporal_suite(&cases, Mode::instrumented(alloc), policy);
                assert!(
                    r.is_clean(),
                    "{alloc}/{policy}: {r}\nmissed: {:?}\nfalse positives: {:?}\n\
                     other traps: {:?}\nerrors: {:?}",
                    r.missed,
                    r.false_positives,
                    r.trapped_other,
                    r.errors
                );
                assert_eq!(r.detected, cases.len() / 2, "{alloc}/{policy}");
            }
        }
    }

    #[test]
    fn off_policy_detects_nothing_and_passes_good() {
        let cases = temporal_cases();
        for alloc in [AllocatorKind::Wrapped, AllocatorKind::Subheap] {
            let r = run_temporal_suite(&cases, Mode::instrumented(alloc), TemporalPolicy::Off);
            assert_eq!(r.detected, 0, "{alloc}: off policy claimed a detection");
            assert!(r.false_positives.is_empty(), "{:?}", r.false_positives);
            assert_eq!(r.passed, cases.len() / 2, "{alloc}: good cases must pass");
        }
    }
}
