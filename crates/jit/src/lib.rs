//! Superinstruction fusion for the raw-speed execution tier.
//!
//! The tier-1 interpreter's fidelity lives in its *modeled* statistics;
//! its host speed is an implementation detail. This crate holds the
//! model-independent half of the second execution tier: a fusion pass
//! that classifies every block of the (already validated) mini-IR into
//! **segments** the VM's fused executor dispatches as single
//! superinstructions —
//!
//! * **arith runs**: maximal sequences of `Bin`/`Mov` ops, which are
//!   infallible and charge one base instruction each, so the executor
//!   can charge the whole run with two additions and execute the data
//!   operations back-to-back without re-entering the dispatch loop;
//! * **GEP+access pairs**: a `Gep` immediately consumed as the address
//!   of the next `Load`/`Store` — the chain the analyze pass classifies
//!   and (when proven) elides, so the pair executes as one fused op
//!   whose check variant is keyed off the [`ElisionPlan`]'s flags on
//!   the decoded stream;
//! * **singles**: everything else (allocation, calls, externals), which
//!   the executor routes to the interpreter's own handlers.
//!
//! The pass is purely syntactic over the program — it never looks at
//! dynamic state — so a [`FusionPlan`] is computed once per run setup
//! and shared with the stats-reconciliation layer in `ifp-vm`, which
//! guarantees the modeled `RunStats` stay bit-identical to tier 1.
//!
//! [`ElisionPlan`]: ifp_compiler::ElisionPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ifp_compiler::ir::{Op, Operand, Program};
use ifp_compiler::InstrPlan;

/// Which executor the VM drives the run with.
///
/// Both tiers produce bit-identical [`RunStats`]; the jit tier is only
/// allowed to be *faster on the host*, never different. The golden
/// suite and the fuzz `tier_divergence` leg enforce that contract.
///
/// [`RunStats`]: https://docs.rs/ifp-vm
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// Tier 1: the pre-decoded reference interpreter.
    #[default]
    Interp,
    /// Tier 2: superinstruction-fused direct-threaded executor.
    Jit,
}

impl ExecTier {
    /// Stable CLI name (`interp` / `jit`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Jit => "jit",
        }
    }

    /// Parses a stable CLI name back into a tier.
    #[must_use]
    pub fn from_name(s: &str) -> Option<ExecTier> {
        match s {
            "interp" => Some(ExecTier::Interp),
            "jit" => Some(ExecTier::Jit),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fused segment of a block's op list. Offsets index the block's
/// `ops` vector; segments tile the list exactly (every op belongs to
/// one segment, and fusion never crosses a block boundary, so branch
/// targets stay segment-aligned).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seg {
    /// `ops[start .. start + len]` are all `Bin`/`Mov`: one batched
    /// superinstruction (`len >= 1`).
    ArithRun {
        /// First op of the run.
        start: u32,
        /// Number of ops in the run.
        len: u32,
    },
    /// `ops[at]` is a `Gep` whose destination register is the pointer
    /// operand of `ops[at + 1]`, a `Load`.
    GepLoad {
        /// Offset of the `Gep`.
        at: u32,
    },
    /// `ops[at]` is a `Gep` whose destination register is the pointer
    /// operand of `ops[at + 1]`, a `Store`.
    GepStore {
        /// Offset of the `Gep`.
        at: u32,
    },
    /// An unfused op (still dispatch-specialized by the executor when
    /// it is a lone `Gep`, `Load`, or `Store`).
    Single {
        /// Offset of the op.
        at: u32,
    },
}

/// Fusion segments for one block.
#[derive(Clone, Debug, Default)]
pub struct BlockFusion {
    /// Segments in op order, tiling the block's op list.
    pub segs: Vec<Seg>,
}

/// Fusion segments for one function, indexed like its block list.
#[derive(Clone, Debug, Default)]
pub struct FuncFusion {
    /// Per-block segment lists.
    pub blocks: Vec<BlockFusion>,
}

/// The whole-program fusion classification the VM's fused executor
/// compiles its threaded streams from.
#[derive(Clone, Debug, Default)]
pub struct FusionPlan {
    /// Per-function fusion, indexed like `program.funcs`.
    pub funcs: Vec<FuncFusion>,
}

/// Static (per-program, not per-run) fusion coverage, for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StaticCoverage {
    /// Total op slots in the program (terminators excluded).
    pub total_ops: u64,
    /// Ops inside arith runs.
    pub arith_ops: u64,
    /// Ops inside GEP+load/store pairs (two per pair).
    pub pair_ops: u64,
    /// Unfused ops.
    pub single_ops: u64,
    /// Of the pairs, how many have their GEP's tag update statically
    /// elided (the analyze handoff: proven accesses compile to the
    /// bare-address variant with poison-only guard).
    pub elided_pairs: u64,
}

impl StaticCoverage {
    /// Fraction of op slots covered by a fused segment, in percent.
    #[must_use]
    pub fn fused_percent(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            100.0 * (self.arith_ops + self.pair_ops) as f64 / self.total_ops as f64
        }
    }
}

/// Dynamic dispatch counters from one fused-tier run: how the executor
/// actually spent its dispatches. Deliberately **not** part of
/// `RunStats` — these describe the host executor, not the modeled
/// machine, and must not perturb golden-pinned output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Ops executed inside batched arith runs.
    pub arith_ops: u64,
    /// Arith-run superinstruction dispatches.
    pub arith_runs: u64,
    /// GEP+load/store superinstruction dispatches (two ops each).
    pub pairs: u64,
    /// Dispatches of specialized lone `Gep`/`Load`/`Store` slots.
    pub specialized: u64,
    /// Ops routed to the interpreter's generic handlers.
    pub generic: u64,
    /// Terminator dispatches (jumps, branches, returns).
    pub terminators: u64,
}

impl FusionStats {
    /// Dynamic ops executed (terminators excluded), matching the
    /// interpreter's op count for the same run.
    #[must_use]
    pub fn dynamic_ops(&self) -> u64 {
        self.arith_ops + 2 * self.pairs + self.specialized + self.generic
    }

    /// Dynamic ops executed via a fused superinstruction.
    #[must_use]
    pub fn fused_ops(&self) -> u64 {
        self.arith_ops + 2 * self.pairs
    }

    /// Percentage of dynamic ops executed fused.
    #[must_use]
    pub fn fused_percent(&self) -> f64 {
        if self.dynamic_ops() == 0 {
            0.0
        } else {
            100.0 * self.fused_ops() as f64 / self.dynamic_ops() as f64
        }
    }
}

fn is_arith(op: &Op) -> bool {
    matches!(op, Op::Bin { .. } | Op::Mov { .. })
}

/// The pointer operand of a memory access, when it is a register.
fn access_ptr_reg(op: &Op) -> Option<u32> {
    match op {
        Op::Load {
            ptr: Operand::Reg(r),
            ..
        }
        | Op::Store {
            ptr: Operand::Reg(r),
            ..
        } => Some(r.0),
        _ => None,
    }
}

/// Classifies every block of `program` into fused segments.
///
/// The rules are deliberately local (no cross-block or cross-op-reorder
/// fusion), so the fused stream's observable op order — and therefore
/// every charge, counter, trace event, and trap point — is exactly the
/// interpreter's:
///
/// 1. maximal `Bin`/`Mov` runs become [`Seg::ArithRun`];
/// 2. a `Gep` immediately followed by a `Load`/`Store` whose pointer
///    operand is the GEP's destination register becomes
///    [`Seg::GepLoad`]/[`Seg::GepStore`];
/// 3. everything else is a [`Seg::Single`].
pub fn fuse(program: &Program) -> FusionPlan {
    let mut funcs = Vec::with_capacity(program.funcs.len());
    for f in &program.funcs {
        let mut blocks = Vec::with_capacity(f.blocks.len());
        for b in &f.blocks {
            let ops = &b.ops;
            let mut segs = Vec::new();
            let mut i = 0usize;
            while i < ops.len() {
                if is_arith(&ops[i]) {
                    let start = i;
                    while i < ops.len() && is_arith(&ops[i]) {
                        i += 1;
                    }
                    segs.push(Seg::ArithRun {
                        start: start as u32,
                        len: (i - start) as u32,
                    });
                    continue;
                }
                if let Op::Gep { dst, .. } = &ops[i] {
                    if i + 1 < ops.len() && access_ptr_reg(&ops[i + 1]) == Some(dst.0) {
                        segs.push(match &ops[i + 1] {
                            Op::Load { .. } => Seg::GepLoad { at: i as u32 },
                            _ => Seg::GepStore { at: i as u32 },
                        });
                        i += 2;
                        continue;
                    }
                }
                segs.push(Seg::Single { at: i as u32 });
                i += 1;
            }
            blocks.push(BlockFusion { segs });
        }
        funcs.push(FuncFusion { blocks });
    }
    FusionPlan { funcs }
}

impl FusionPlan {
    /// Static coverage of `program` under this plan. When `plan` (the
    /// instrumentation plan produced by the analyze handoff) is given,
    /// pairs whose GEP tag update is statically elided are counted as
    /// elision-specialized.
    #[must_use]
    pub fn coverage(&self, program: &Program, plan: Option<&InstrPlan>) -> StaticCoverage {
        let mut c = StaticCoverage::default();
        for (fi, ff) in self.funcs.iter().enumerate() {
            for (bi, bf) in ff.blocks.iter().enumerate() {
                for seg in &bf.segs {
                    match *seg {
                        Seg::ArithRun { len, .. } => c.arith_ops += u64::from(len),
                        Seg::GepLoad { at } | Seg::GepStore { at } => {
                            c.pair_ops += 2;
                            if plan.is_some_and(|p| p.elide_flags(fi, bi, at as usize).tag_update) {
                                c.elided_pairs += 1;
                            }
                        }
                        Seg::Single { .. } => c.single_ops += 1,
                    }
                }
            }
        }
        c.total_ops = program
            .funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.ops.len() as u64)
            .sum();
        c
    }
}

/// Fuses `program` with the instrumentation plan the analyze pipeline
/// would hand the VM for this configuration, returning the plan and the
/// static coverage in one call — the entry point reports use.
#[must_use]
pub fn fuse_with_coverage(
    program: &Program,
    instrumented: bool,
    elide: bool,
) -> (FusionPlan, StaticCoverage) {
    let plan = fuse(program);
    let instr = instrumented.then(|| ifp_analyze::instr_plan(program, elide));
    let coverage = plan.coverage(program, instr.as_ref());
    (plan, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        for t in [ExecTier::Interp, ExecTier::Jit] {
            assert_eq!(ExecTier::from_name(t.name()), Some(t));
        }
        assert_eq!(ExecTier::from_name("native"), None);
        assert_eq!(ExecTier::default(), ExecTier::Interp);
    }

    #[test]
    fn segments_tile_every_block_in_order() {
        for w in ifp_workloads::all() {
            let program = w.build_default();
            let plan = fuse(&program);
            assert_eq!(plan.funcs.len(), program.funcs.len(), "{}", w.name);
            for (f, ff) in program.funcs.iter().zip(&plan.funcs) {
                assert_eq!(f.blocks.len(), ff.blocks.len());
                for (b, bf) in f.blocks.iter().zip(&ff.blocks) {
                    let mut next = 0u32;
                    for seg in &bf.segs {
                        let (start, len) = match *seg {
                            Seg::ArithRun { start, len } => (start, len),
                            Seg::GepLoad { at } | Seg::GepStore { at } => (at, 2),
                            Seg::Single { at } => (at, 1),
                        };
                        assert_eq!(start, next, "{}: segment gap or overlap", w.name);
                        assert!(len >= 1);
                        next = start + len;
                    }
                    assert_eq!(next as usize, b.ops.len(), "{}: block not tiled", w.name);
                }
            }
        }
    }

    #[test]
    fn segment_kinds_match_the_ops_they_cover() {
        for w in ifp_workloads::all() {
            let program = w.build_default();
            let plan = fuse(&program);
            for (f, ff) in program.funcs.iter().zip(&plan.funcs) {
                for (b, bf) in f.blocks.iter().zip(&ff.blocks) {
                    for seg in &bf.segs {
                        match *seg {
                            Seg::ArithRun { start, len } => {
                                for i in start..start + len {
                                    assert!(is_arith(&b.ops[i as usize]));
                                }
                            }
                            Seg::GepLoad { at } => {
                                let Op::Gep { dst, .. } = &b.ops[at as usize] else {
                                    panic!("pair head must be a Gep");
                                };
                                assert!(matches!(b.ops[at as usize + 1], Op::Load { .. }));
                                assert_eq!(access_ptr_reg(&b.ops[at as usize + 1]), Some(dst.0));
                            }
                            Seg::GepStore { at } => {
                                let Op::Gep { dst, .. } = &b.ops[at as usize] else {
                                    panic!("pair head must be a Gep");
                                };
                                assert!(matches!(b.ops[at as usize + 1], Op::Store { .. }));
                                assert_eq!(access_ptr_reg(&b.ops[at as usize + 1]), Some(dst.0));
                            }
                            Seg::Single { .. } => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn workloads_have_meaningful_static_coverage() {
        // The pass must actually find fusion opportunities in the real
        // workload family, or the tier is dispatch theater.
        let mut total = StaticCoverage::default();
        for w in ifp_workloads::all() {
            let program = w.build_default();
            let (_, c) = fuse_with_coverage(&program, true, false);
            total.total_ops += c.total_ops;
            total.arith_ops += c.arith_ops;
            total.pair_ops += c.pair_ops;
            total.single_ops += c.single_ops;
        }
        assert_eq!(
            total.total_ops,
            total.arith_ops + total.pair_ops + total.single_ops
        );
        assert!(
            total.fused_percent() > 30.0,
            "static fusion coverage collapsed: {:.1}%",
            total.fused_percent()
        );
    }

    #[test]
    fn elision_handoff_marks_proven_pairs() {
        // Under the elision plan at least one workload must yield
        // elision-specialized pairs, proving the analyze -> jit handoff
        // carries through.
        let elided: u64 = ifp_workloads::all()
            .iter()
            .map(|w| {
                let program = w.build_default();
                fuse_with_coverage(&program, true, true).1.elided_pairs
            })
            .sum();
        assert!(elided > 0, "no elision-specialized pairs found");
    }
}
