//! The 48-bit metadata MAC.
//!
//! Object metadata for the local offset and subheap schemes lives in the
//! same memory the application can scribble over (via legacy code or
//! temporal errors), so the paper attaches a MAC that `promote` verifies
//! before trusting a fetched record. The prototype does not specify the
//! algorithm; we use SipHash-1-3 truncated to 48 bits, implemented from
//! scratch because no cryptography crates are available offline. Only the
//! tamper-*detection* behaviour matters for the reproduction, not
//! cryptographic strength.

/// A 128-bit MAC key held by the machine (conceptually in a privileged
/// control register, initialized by the runtime at startup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacKey {
    k0: u64,
    k1: u64,
}

impl MacKey {
    /// Creates a key from two 64-bit halves.
    #[must_use]
    pub fn new(k0: u64, k1: u64) -> Self {
        MacKey { k0, k1 }
    }

    /// The fixed key used by deterministic simulations and tests.
    #[must_use]
    pub fn default_for_sim() -> Self {
        MacKey::new(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908)
    }
}

impl Default for MacKey {
    fn default() -> Self {
        MacKey::default_for_sim()
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-1-3 over `data` and truncates the result to 48 bits.
///
/// # Examples
///
/// ```
/// use ifp_meta::mac::{mac48, MacKey};
///
/// let key = MacKey::default_for_sim();
/// let m = mac48(key, b"object metadata");
/// assert!(m < 1 << 48);
/// assert_ne!(m, mac48(key, b"object metadatb"));
/// ```
#[must_use]
pub fn mac48(key: MacKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v); // c = 1 compression round
        v[0] ^= m;
    }

    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = (data.len() & 0xff) as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    v[0] ^= m;

    v[2] ^= 0xff;
    for _ in 0..3 {
        sipround(&mut v); // d = 3 finalization rounds
    }

    (v[0] ^ v[1] ^ v[2] ^ v[3]) & ((1 << 48) - 1)
}

/// Convenience: MAC over a sequence of 64-bit words (how the hardware
/// feeds metadata fields into the `ifpmac` unit).
#[must_use]
pub fn mac48_words(key: MacKey, words: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    mac48(key, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_deterministic() {
        let key = MacKey::default_for_sim();
        assert_eq!(mac48(key, b"hello"), mac48(key, b"hello"));
    }

    #[test]
    fn mac_fits_48_bits() {
        let key = MacKey::default_for_sim();
        for i in 0..64u64 {
            assert!(mac48_words(key, &[i, i * 31]) < 1 << 48);
        }
    }

    #[test]
    fn mac_depends_on_key() {
        let a = MacKey::new(1, 2);
        let b = MacKey::new(1, 3);
        assert_ne!(mac48(a, b"metadata"), mac48(b, b"metadata"));
    }

    #[test]
    fn mac_depends_on_every_input_word() {
        let key = MacKey::default_for_sim();
        let base = mac48_words(key, &[0x1000, 64, 0xdead]);
        assert_ne!(base, mac48_words(key, &[0x1001, 64, 0xdead]));
        assert_ne!(base, mac48_words(key, &[0x1000, 65, 0xdead]));
        assert_ne!(base, mac48_words(key, &[0x1000, 64, 0xdeae]));
    }

    #[test]
    fn mac_depends_on_length() {
        let key = MacKey::default_for_sim();
        assert_ne!(mac48(key, b"ab"), mac48(key, b"ab\0"));
    }

    #[test]
    fn single_bit_flips_change_mac() {
        let key = MacKey::default_for_sim();
        let data = *b"0123456789abcdef";
        let base = mac48(key, &data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut tampered = data;
                tampered[byte] ^= 1 << bit;
                assert_ne!(base, mac48(key, &tampered), "flip {byte}:{bit} undetected");
            }
        }
    }
}
