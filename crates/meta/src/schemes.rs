//! Object-metadata encodings for the three In-Fat Pointer lookup schemes.
//!
//! Every scheme ultimately resolves to the same [`ObjectMetadata`] — object
//! base, object size and an optional layout-table pointer — but each stores
//! it differently to omit redundant information (paper §3.3):
//!
//! * [`LocalOffsetMeta`] — 16 bytes appended to the object itself; the
//!   object base is *derived* from the metadata address and size.
//! * [`SubheapMeta`] — 32 bytes shared by all slots of a power-of-two
//!   block; the object base is derived by slot arithmetic.
//! * [`GlobalTableRow`] — 16 bytes in the global table; base and size are
//!   stored explicitly.
//!
//! The first two live in application-reachable memory and carry a 48-bit
//! MAC over their fields and location, verified during `promote`.

use crate::mac::{mac48_words, MacKey};
use ifp_tag::{Bounds, LOCAL_OFFSET_GRANULE};
use std::fmt;

/// Scheme-independent resolved object metadata: what every lookup scheme
/// hands to the bounds-narrowing stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectMetadata {
    /// Object base address.
    pub base: u64,
    /// Object size in bytes.
    pub size: u64,
    /// Address of the type's layout table, or 0 when the object has none
    /// (in which case bounds cannot be narrowed below the object).
    pub layout_table: u64,
}

impl ObjectMetadata {
    /// The object bounds.
    #[must_use]
    pub fn bounds(&self) -> Bounds {
        Bounds::from_base_size(self.base, self.size)
    }

    /// Whether subobject narrowing is possible for this object.
    #[must_use]
    pub fn has_layout_table(&self) -> bool {
        self.layout_table != 0
    }
}

/// Error decoding or verifying an object-metadata record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaError {
    /// The MAC stored in the record does not match the recomputed value.
    BadMac,
    /// A field is structurally impossible (e.g. zero-sized slot array slot).
    Malformed,
    /// The queried address does not fall inside the metadata's slot array.
    OutsideSlots {
        /// The queried address.
        addr: u64,
    },
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::BadMac => f.write_str("object metadata MAC mismatch"),
            MetaError::Malformed => f.write_str("object metadata is malformed"),
            MetaError::OutsideSlots { addr } => {
                write!(f, "address {addr:#x} falls outside the block's slot array")
            }
        }
    }
}

impl std::error::Error for MetaError {}

/// Domain-separation tags so a record of one scheme cannot be replayed as
/// another scheme's record.
const MAC_DOMAIN_LOCAL: u64 = 0x4c4f_4341_4c00_0001; // "LOCAL"
const MAC_DOMAIN_SUBHEAP: u64 = 0x5355_4248_4541_0002; // "SUBHEA"

/// Rounds `size` up to the local-offset granule.
#[must_use]
pub fn round_up_granule(size: u64) -> u64 {
    size.div_ceil(LOCAL_OFFSET_GRANULE) * LOCAL_OFFSET_GRANULE
}

/// Object metadata for the **local offset scheme** (paper §3.3.1).
///
/// The 128-bit record is appended after the object (object base and
/// metadata base are granule-aligned). The pointer tag stores the offset
/// from the pointer's (granule-truncated) address to this record, so only
/// the size needs to be stored to recover the object base:
/// `base = meta_addr - round_up(size, granule)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalOffsetMeta {
    /// Object size in bytes (16 bits in the prototype — max 1008 anyway).
    pub object_size: u16,
    /// Layout-table address, or 0 for none.
    pub layout_table: u64,
    /// 48-bit MAC over the fields and the metadata location.
    pub mac: u64,
}

impl LocalOffsetMeta {
    /// Byte size of the in-memory record.
    pub const SIZE: u64 = 16;

    /// Creates a record with a freshly computed MAC.
    #[must_use]
    pub fn new(object_size: u16, layout_table: u64, meta_addr: u64, key: MacKey) -> Self {
        let mut m = LocalOffsetMeta {
            object_size,
            layout_table,
            mac: 0,
        };
        m.mac = m.compute_mac(meta_addr, key);
        m
    }

    /// The MAC this record should carry when stored at `meta_addr`.
    #[must_use]
    pub fn compute_mac(&self, meta_addr: u64, key: MacKey) -> u64 {
        mac48_words(
            key,
            &[
                MAC_DOMAIN_LOCAL,
                meta_addr,
                u64::from(self.object_size),
                self.layout_table,
            ],
        )
    }

    /// Serializes to the 16-byte image: `size (2) | lt ptr (8) | mac (6)`.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; Self::SIZE as usize] {
        let mut b = [0u8; 16];
        b[0..2].copy_from_slice(&self.object_size.to_le_bytes());
        b[2..10].copy_from_slice(&self.layout_table.to_le_bytes());
        b[10..16].copy_from_slice(&self.mac.to_le_bytes()[..6]);
        b
    }

    /// Deserializes from the 16-byte image.
    #[must_use]
    pub fn from_bytes(b: &[u8; Self::SIZE as usize]) -> Self {
        let mut mac_bytes = [0u8; 8];
        mac_bytes[..6].copy_from_slice(&b[10..16]);
        LocalOffsetMeta {
            object_size: u16::from_le_bytes([b[0], b[1]]),
            layout_table: u64::from_le_bytes(b[2..10].try_into().expect("8 bytes")),
            mac: u64::from_le_bytes(mac_bytes),
        }
    }

    /// Verifies the MAC and resolves to scheme-independent metadata.
    ///
    /// # Errors
    ///
    /// [`MetaError::BadMac`] when the record fails verification —
    /// `promote` poisons the output IFPR in that case.
    pub fn resolve(&self, meta_addr: u64, key: MacKey) -> Result<ObjectMetadata, MetaError> {
        if self.mac != self.compute_mac(meta_addr, key) {
            return Err(MetaError::BadMac);
        }
        let size = u64::from(self.object_size);
        let base = meta_addr - round_up_granule(size);
        Ok(ObjectMetadata {
            base,
            size,
            layout_table: self.layout_table,
        })
    }

    /// Where the metadata record lives for an object at `base` of `size`
    /// bytes: appended after the granule-padded object.
    #[must_use]
    pub fn meta_addr_for(base: u64, size: u64) -> u64 {
        base + round_up_granule(size)
    }
}

/// A subheap control register: maps the 4-bit tag index to the geometry of
/// a block class (paper Figure 7's "implementation defined function").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SubheapCtrl {
    /// log2 of the block size; 0 marks the register unused.
    pub block_shift: u8,
    /// Byte offset from the block base to the [`SubheapMeta`] record.
    pub meta_offset: u32,
}

impl SubheapCtrl {
    /// Whether this control register describes a live block class.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.block_shift != 0
    }

    /// The block size in bytes.
    #[must_use]
    pub fn block_size(&self) -> u64 {
        1u64 << self.block_shift
    }

    /// The base of the power-of-two-aligned block containing `addr`.
    #[must_use]
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.block_size() - 1)
    }

    /// The metadata address for the block containing `addr`.
    #[must_use]
    pub fn meta_addr(&self, addr: u64) -> u64 {
        self.block_base(addr) + u64::from(self.meta_offset)
    }
}

/// Object metadata for the **subheap scheme** (paper §3.3.2): one 32-byte
/// record per power-of-two block, shared by every slot in the block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubheapMeta {
    /// Offset from block base to the first slot.
    pub slot_start: u32,
    /// Offset from block base past the last slot.
    pub slot_end: u32,
    /// Byte size of one slot (a multiple of 16 so hardware division stays
    /// cheap, per the paper's constraint).
    pub slot_size: u32,
    /// Byte size of the object stored in each slot (`<= slot_size`).
    pub object_size: u32,
    /// Layout-table address, or 0 for none.
    pub layout_table: u64,
    /// 48-bit MAC over the fields and the block location.
    pub mac: u64,
}

impl SubheapMeta {
    /// Byte size of the in-memory record.
    pub const SIZE: u64 = 32;

    /// Creates a record with a freshly computed MAC for a block at
    /// `block_base`.
    #[must_use]
    pub fn new(
        slot_start: u32,
        slot_end: u32,
        slot_size: u32,
        object_size: u32,
        layout_table: u64,
        block_base: u64,
        key: MacKey,
    ) -> Self {
        let mut m = SubheapMeta {
            slot_start,
            slot_end,
            slot_size,
            object_size,
            layout_table,
            mac: 0,
        };
        m.mac = m.compute_mac(block_base, key);
        m
    }

    /// The MAC this record should carry for a block at `block_base`.
    #[must_use]
    pub fn compute_mac(&self, block_base: u64, key: MacKey) -> u64 {
        mac48_words(
            key,
            &[
                MAC_DOMAIN_SUBHEAP,
                block_base,
                u64::from(self.slot_start),
                u64::from(self.slot_end),
                u64::from(self.slot_size),
                u64::from(self.object_size),
                self.layout_table,
            ],
        )
    }

    /// Serializes to the 32-byte image.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; Self::SIZE as usize] {
        let mut b = [0u8; 32];
        b[0..4].copy_from_slice(&self.slot_start.to_le_bytes());
        b[4..8].copy_from_slice(&self.slot_end.to_le_bytes());
        b[8..12].copy_from_slice(&self.slot_size.to_le_bytes());
        b[12..16].copy_from_slice(&self.object_size.to_le_bytes());
        b[16..24].copy_from_slice(&self.layout_table.to_le_bytes());
        b[24..30].copy_from_slice(&self.mac.to_le_bytes()[..6]);
        b
    }

    /// Deserializes from the 32-byte image.
    #[must_use]
    pub fn from_bytes(b: &[u8; Self::SIZE as usize]) -> Self {
        let mut mac_bytes = [0u8; 8];
        mac_bytes[..6].copy_from_slice(&b[24..30]);
        SubheapMeta {
            slot_start: u32::from_le_bytes(b[0..4].try_into().expect("4 bytes")),
            slot_end: u32::from_le_bytes(b[4..8].try_into().expect("4 bytes")),
            slot_size: u32::from_le_bytes(b[8..12].try_into().expect("4 bytes")),
            object_size: u32::from_le_bytes(b[12..16].try_into().expect("4 bytes")),
            layout_table: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            mac: u64::from_le_bytes(mac_bytes),
        }
    }

    /// Verifies the MAC and resolves the object containing `addr`.
    ///
    /// # Errors
    ///
    /// * [`MetaError::BadMac`] on MAC mismatch;
    /// * [`MetaError::Malformed`] on impossible geometry;
    /// * [`MetaError::OutsideSlots`] when `addr` is in the block but not in
    ///   the slot array (e.g. points at the metadata or padding).
    pub fn resolve(
        &self,
        block_base: u64,
        addr: u64,
        key: MacKey,
    ) -> Result<ObjectMetadata, MetaError> {
        if self.mac != self.compute_mac(block_base, key) {
            return Err(MetaError::BadMac);
        }
        if self.slot_size == 0
            || self.slot_start > self.slot_end
            || self.object_size > self.slot_size
        {
            return Err(MetaError::Malformed);
        }
        let slots_base = block_base + u64::from(self.slot_start);
        let slots_end = block_base + u64::from(self.slot_end);
        if addr < slots_base || addr >= slots_end {
            return Err(MetaError::OutsideSlots { addr });
        }
        let idx = (addr - slots_base) / u64::from(self.slot_size);
        let base = slots_base + idx * u64::from(self.slot_size);
        Ok(ObjectMetadata {
            base,
            size: u64::from(self.object_size),
            layout_table: self.layout_table,
        })
    }
}

/// Object metadata for the **global table scheme** (paper §3.3.3): a
/// 16-byte row in the global metadata table.
///
/// Encoding: word 0 holds the 48-bit base address with a valid flag in the
/// top bit; word 1 holds the 32-bit size and the layout-table address
/// compressed as a count of 16-byte granules (layout tables are 16-byte
/// aligned and must live below 2^36). The table itself lives in memory the
/// application never receives a pointer to, so rows carry no MAC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct GlobalTableRow {
    /// Object base address (48 bits).
    pub base: u64,
    /// Object size in bytes (32 bits).
    pub size: u32,
    /// Layout-table address, or 0 for none.
    pub layout_table: u64,
    /// Whether the row currently describes a live object.
    pub valid: bool,
}

impl GlobalTableRow {
    /// Byte size of one row.
    pub const SIZE: u64 = 16;

    /// Serializes to the 16-byte image.
    ///
    /// # Panics
    ///
    /// Panics if the layout-table address is not 16-byte aligned or does
    /// not fit the compressed field.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; Self::SIZE as usize] {
        assert_eq!(
            self.layout_table % 16,
            0,
            "layout table must be 16-byte aligned"
        );
        let lt_granules = self.layout_table / 16;
        assert!(
            lt_granules < 1 << 32,
            "layout table address too high to compress"
        );
        let word0 = (self.base & ((1 << 48) - 1)) | (u64::from(self.valid) << 63);
        let word1 = u64::from(self.size) | (lt_granules << 32);
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&word0.to_le_bytes());
        b[8..16].copy_from_slice(&word1.to_le_bytes());
        b
    }

    /// Deserializes from the 16-byte image.
    #[must_use]
    pub fn from_bytes(b: &[u8; Self::SIZE as usize]) -> Self {
        let word0 = u64::from_le_bytes(b[0..8].try_into().expect("8 bytes"));
        let word1 = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
        GlobalTableRow {
            base: word0 & ((1 << 48) - 1),
            size: (word1 & 0xffff_ffff) as u32,
            layout_table: (word1 >> 32) * 16,
            valid: word0 >> 63 != 0,
        }
    }

    /// Resolves to scheme-independent metadata.
    ///
    /// # Errors
    ///
    /// [`MetaError::Malformed`] when the row is not valid (stale index or
    /// deregistered object).
    pub fn resolve(&self) -> Result<ObjectMetadata, MetaError> {
        if !self.valid {
            return Err(MetaError::Malformed);
        }
        Ok(ObjectMetadata {
            base: self.base,
            size: u64::from(self.size),
            layout_table: self.layout_table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MacKey {
        MacKey::default_for_sim()
    }

    #[test]
    fn local_offset_roundtrip_and_base_derivation() {
        // A 20-byte object at 0x1000: padded to 32, metadata at 0x1020.
        let meta_addr = LocalOffsetMeta::meta_addr_for(0x1000, 20);
        assert_eq!(meta_addr, 0x1020);
        let m = LocalOffsetMeta::new(20, 0x9000, meta_addr, key());
        let decoded = LocalOffsetMeta::from_bytes(&m.to_bytes());
        assert_eq!(decoded, m);
        let obj = decoded.resolve(meta_addr, key()).unwrap();
        assert_eq!(obj.base, 0x1000);
        assert_eq!(obj.size, 20);
        assert_eq!(obj.layout_table, 0x9000);
    }

    #[test]
    fn local_offset_mac_binds_location() {
        let m = LocalOffsetMeta::new(64, 0, 0x1040, key());
        assert!(m.resolve(0x1040, key()).is_ok());
        // Replaying the record at a different address fails.
        assert_eq!(m.resolve(0x2040, key()), Err(MetaError::BadMac));
    }

    #[test]
    fn local_offset_tamper_detected() {
        let m = LocalOffsetMeta::new(64, 0x9000, 0x1040, key());
        let mut bytes = m.to_bytes();
        bytes[0] ^= 1; // size bit flip
        let tampered = LocalOffsetMeta::from_bytes(&bytes);
        assert_eq!(tampered.resolve(0x1040, key()), Err(MetaError::BadMac));
    }

    #[test]
    fn subheap_slot_resolution() {
        // 4 KiB block at 0x40000: metadata in the first 32 bytes, slots of
        // 48 bytes holding 40-byte objects from offset 64.
        let block = 0x40000;
        let m = SubheapMeta::new(64, 64 + 48 * 10, 48, 40, 0x9000, block, key());
        let decoded = SubheapMeta::from_bytes(&m.to_bytes());
        assert_eq!(decoded, m);
        // Address inside slot 3.
        let addr = block + 64 + 48 * 3 + 17;
        let obj = decoded.resolve(block, addr, key()).unwrap();
        assert_eq!(obj.base, block + 64 + 48 * 3);
        assert_eq!(obj.size, 40);
        assert_eq!(obj.layout_table, 0x9000);
    }

    #[test]
    fn subheap_rejects_addresses_outside_slots() {
        let block = 0x40000;
        let m = SubheapMeta::new(64, 64 + 48 * 10, 48, 40, 0, block, key());
        assert!(matches!(
            m.resolve(block, block + 8, key()),
            Err(MetaError::OutsideSlots { .. })
        ));
        assert!(matches!(
            m.resolve(block, block + 64 + 48 * 10, key()),
            Err(MetaError::OutsideSlots { .. })
        ));
    }

    #[test]
    fn subheap_mac_binds_block() {
        let m = SubheapMeta::new(64, 64 + 48, 48, 40, 0, 0x40000, key());
        assert_eq!(
            m.resolve(0x80000, 0x80000 + 70, key()),
            Err(MetaError::BadMac)
        );
    }

    #[test]
    fn subheap_tamper_detected() {
        let block = 0x40000;
        let m = SubheapMeta::new(64, 64 + 48, 48, 40, 0, block, key());
        let mut bytes = m.to_bytes();
        bytes[12] ^= 0x80; // object_size bit
        let tampered = SubheapMeta::from_bytes(&bytes);
        assert_eq!(
            tampered.resolve(block, block + 70, key()),
            Err(MetaError::BadMac)
        );
    }

    #[test]
    fn subheap_ctrl_block_math() {
        let ctrl = SubheapCtrl {
            block_shift: 12,
            meta_offset: 0,
        };
        assert!(ctrl.is_valid());
        assert_eq!(ctrl.block_size(), 4096);
        assert_eq!(ctrl.block_base(0x40abc), 0x40000);
        assert_eq!(ctrl.meta_addr(0x40abc), 0x40000);
        assert!(!SubheapCtrl::default().is_valid());
    }

    #[test]
    fn global_row_roundtrip() {
        let row = GlobalTableRow {
            base: 0x1234_5678_9abc,
            size: 0x10_0000,
            layout_table: 0x9000,
            valid: true,
        };
        let decoded = GlobalTableRow::from_bytes(&row.to_bytes());
        assert_eq!(decoded, row);
        let obj = decoded.resolve().unwrap();
        assert_eq!(obj.base, row.base);
        assert_eq!(obj.size, u64::from(row.size));
    }

    #[test]
    fn invalid_global_row_rejected() {
        let row = GlobalTableRow {
            valid: false,
            ..GlobalTableRow::default()
        };
        assert_eq!(row.resolve(), Err(MetaError::Malformed));
        let decoded = GlobalTableRow::from_bytes(&row.to_bytes());
        assert!(!decoded.valid);
    }

    #[test]
    fn granule_rounding() {
        assert_eq!(round_up_granule(0), 0);
        assert_eq!(round_up_granule(1), 16);
        assert_eq!(round_up_granule(16), 16);
        assert_eq!(round_up_granule(17), 32);
        assert_eq!(round_up_granule(1008), 1008);
    }
}
