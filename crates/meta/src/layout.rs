//! Per-type layout tables and the subobject bounds-narrowing algorithm.
//!
//! A layout table flattens a type's subobject tree into an array of
//! entries, one per subobject that a pointer can be narrowed to (paper
//! Figure 9). Entry 0 always describes the whole object; every other entry
//! holds `{parent, base, bound, element size}` where `base`/`bound` are
//! byte offsets **from the base of the parent subobject**.
//!
//! Arrays are the subtle case. An array occupies one entry covering the
//! whole array extent with `element size` set to the size of one element —
//! so pointer arithmetic that walks the array never needs a subobject-index
//! update. When a *child* of an array entry is resolved, the hardware must
//! first select which array element the address falls in, which requires a
//! division (the multi-cycle path called out in the paper's area analysis).
//!
//! The same rule makes whole-object array allocations work: when the object
//! bounds fetched from object metadata are larger than entry 0's element
//! size (`malloc(n * sizeof(T))`), the root itself behaves as an array of
//! `T` and children are resolved relative to the selected element.

use ifp_tag::Bounds;
use std::fmt;

/// Byte size of one serialized layout-table entry.
pub const ENTRY_SIZE: u64 = 16;
/// Byte size of the serialized table header (the entry count).
pub const HEADER_SIZE: u64 = 8;
/// Hard cap on entries per table (the widest subobject-index field that
/// could ever address them is 12 bits).
pub const MAX_ENTRIES: usize = 4096;

/// One subobject record.
///
/// For a non-array subobject `bound - base == elem_size`; for an array the
/// entry covers the whole array and `elem_size` is the size of one element.
/// The element count is not stored — it is `(bound - base) / elem_size`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayoutEntry {
    /// Index of the parent subobject (must be less than this entry's index).
    pub parent: u16,
    /// Lower bound, bytes from the parent subobject's base.
    pub base: u32,
    /// Upper bound (exclusive), bytes from the parent subobject's base.
    pub bound: u32,
    /// Size of one element of this subobject.
    pub elem_size: u32,
}

impl LayoutEntry {
    /// Serializes to the 16-byte in-memory image.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; ENTRY_SIZE as usize] {
        let mut b = [0u8; 16];
        b[0..2].copy_from_slice(&self.parent.to_le_bytes());
        // bytes 2..4 reserved
        b[4..8].copy_from_slice(&self.base.to_le_bytes());
        b[8..12].copy_from_slice(&self.bound.to_le_bytes());
        b[12..16].copy_from_slice(&self.elem_size.to_le_bytes());
        b
    }

    /// Deserializes from the 16-byte in-memory image.
    #[must_use]
    pub fn from_bytes(b: &[u8; ENTRY_SIZE as usize]) -> Self {
        LayoutEntry {
            parent: u16::from_le_bytes([b[0], b[1]]),
            base: u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            bound: u32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            elem_size: u32::from_le_bytes([b[12], b[13], b[14], b[15]]),
        }
    }

    /// Whether this entry describes an array (multiple elements).
    #[must_use]
    pub fn is_array(&self) -> bool {
        (self.bound - self.base) as u64 != u64::from(self.elem_size)
    }
}

/// Error raised while building or walking a layout table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NarrowError {
    /// The subobject index is past the end of the table.
    IndexOutOfRange {
        /// The offending index.
        index: u16,
        /// Number of entries in the table.
        len: usize,
    },
    /// An entry's parent index is not strictly smaller than its own index,
    /// so the walk would not terminate. Treated as corrupt metadata.
    MalformedParent {
        /// The offending entry index.
        index: u16,
    },
    /// An entry has `base > bound` or a zero element size where one is
    /// needed for element selection. Treated as corrupt metadata.
    MalformedEntry {
        /// The offending entry index.
        index: u16,
    },
    /// A child's narrowed bounds fall outside its parent's element — the
    /// table does not describe a properly nested type.
    NotNested {
        /// The offending entry index.
        index: u16,
    },
}

impl fmt::Display for NarrowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NarrowError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "subobject index {index} out of range for {len}-entry layout table"
                )
            }
            NarrowError::MalformedParent { index } => {
                write!(f, "layout entry {index} has a non-decreasing parent link")
            }
            NarrowError::MalformedEntry { index } => {
                write!(f, "layout entry {index} is malformed")
            }
            NarrowError::NotNested { index } => {
                write!(f, "layout entry {index} escapes its parent bounds")
            }
        }
    }
}

impl std::error::Error for NarrowError {}

/// Result of a successful narrowing walk, including the work done — the
/// cycle model charges per entry fetched and per division.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NarrowOutcome {
    /// The narrowed subobject bounds.
    pub bounds: Bounds,
    /// Layout-table entries fetched from memory during the walk.
    pub entries_fetched: u32,
    /// Element-selection divisions performed (multi-cycle in hardware).
    pub divisions: u32,
}

/// Selects the base address of the array element of `parent` that contains
/// `addr`, clamping to the last element when `addr` is past the end.
///
/// Returns the slot base and whether a division was needed (it is skipped
/// when the parent is not an array). Out-of-range addresses are clamped
/// rather than rejected: the resulting subobject bounds will simply fail
/// the subsequent access check, matching hardware that must always produce
/// *some* bounds.
///
/// # Errors
///
/// Returns [`NarrowError::MalformedEntry`] when element selection would
/// divide by a zero element size.
pub fn element_slot(
    parent_bounds: Bounds,
    parent_elem_size: u32,
    addr: u64,
    parent_index: u16,
) -> Result<(u64, bool), NarrowError> {
    let extent = parent_bounds.size();
    if extent == u64::from(parent_elem_size) {
        return Ok((parent_bounds.lower(), false));
    }
    if parent_elem_size == 0 {
        return Err(NarrowError::MalformedEntry {
            index: parent_index,
        });
    }
    let elem = u64::from(parent_elem_size);
    let count = (extent / elem).max(1);
    let off = addr.saturating_sub(parent_bounds.lower());
    let idx = (off / elem).min(count - 1);
    Ok((parent_bounds.lower() + idx * elem, true))
}

/// A per-type layout table (the host-side model of the `__IFP_LT_...`
/// constant arrays the compiler emits).
///
/// # Examples
///
/// Building the table for the paper's Figure 9 example:
///
/// ```
/// use ifp_meta::layout::LayoutTableBuilder;
///
/// // struct S { int v1; struct { int v3; int v4; } array[2]; int v5; }
/// let mut b = LayoutTableBuilder::new(24);
/// let v1 = b.child(0, 0, 4, 4).unwrap();      // element 1
/// let array = b.child(0, 4, 20, 8).unwrap();  // element 2
/// let v3 = b.child(array, 0, 4, 4).unwrap();  // element 3
/// let v4 = b.child(array, 4, 8, 4).unwrap();  // element 4
/// let v5 = b.child(0, 20, 24, 4).unwrap();    // element 5
/// let table = b.build();
/// assert_eq!((v1, array, v3, v4, v5), (1, 2, 3, 4, 5));
/// assert_eq!(table.len(), 6);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayoutTable {
    entries: Vec<LayoutEntry>,
}

impl LayoutTable {
    /// Number of entries (including the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds only the root entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// The entries, root first.
    #[must_use]
    pub fn entries(&self) -> &[LayoutEntry] {
        &self.entries
    }

    /// The entry at `index`, if present.
    #[must_use]
    pub fn get(&self, index: u16) -> Option<&LayoutEntry> {
        self.entries.get(usize::from(index))
    }

    /// Serializes to the in-memory image: an 8-byte entry count followed by
    /// 16-byte entries.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_SIZE as usize + self.entries.len() * 16);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.to_bytes());
        }
        out
    }

    /// Deserializes and validates an in-memory image.
    ///
    /// # Errors
    ///
    /// Returns a [`NarrowError`] describing the first malformed entry.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NarrowError> {
        if bytes.len() < HEADER_SIZE as usize {
            return Err(NarrowError::MalformedEntry { index: 0 });
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        if count == 0
            || count > MAX_ENTRIES
            || bytes.len() < HEADER_SIZE as usize + count * ENTRY_SIZE as usize
        {
            return Err(NarrowError::MalformedEntry { index: 0 });
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let start = HEADER_SIZE as usize + i * ENTRY_SIZE as usize;
            let chunk: &[u8; 16] = bytes[start..start + 16].try_into().expect("16 bytes");
            entries.push(LayoutEntry::from_bytes(chunk));
        }
        let table = LayoutTable { entries };
        table.validate()?;
        Ok(table)
    }

    /// Checks the structural invariants every walk relies on.
    ///
    /// # Errors
    ///
    /// Returns a [`NarrowError`] describing the first violation.
    pub fn validate(&self) -> Result<(), NarrowError> {
        for (i, e) in self.entries.iter().enumerate() {
            let index = u16::try_from(i).expect("MAX_ENTRIES fits u16 range");
            if i > 0 && usize::from(e.parent) >= i {
                return Err(NarrowError::MalformedParent { index });
            }
            if e.base > e.bound || (e.bound > e.base && e.elem_size == 0) {
                return Err(NarrowError::MalformedEntry { index });
            }
            let extent = (e.bound - e.base) as u64;
            if e.elem_size != 0 && !extent.is_multiple_of(u64::from(e.elem_size)) {
                return Err(NarrowError::MalformedEntry { index });
            }
            if i > 0 {
                // A child must fit inside one *element* of its parent (the
                // runtime object may be an array of the root element).
                let p = &self.entries[usize::from(e.parent)];
                if e.bound > p.elem_size {
                    return Err(NarrowError::NotNested { index });
                }
            }
        }
        Ok(())
    }

    /// Narrows object bounds to the bounds of subobject `index` for a
    /// pointer currently at `addr`.
    ///
    /// This is the host-side reference implementation of the hardware
    /// layout-table walker: resolve the chain of parents up to the root
    /// (whose bounds are the object bounds fetched from object metadata),
    /// then narrow top-down, selecting array elements by address along the
    /// way.
    ///
    /// # Errors
    ///
    /// Returns a [`NarrowError`] when `index` is out of range or the table
    /// is malformed — cases the hardware reports as invalid metadata,
    /// poisoning the output IFPR.
    pub fn narrow(
        &self,
        object_bounds: Bounds,
        addr: u64,
        index: u16,
    ) -> Result<NarrowOutcome, NarrowError> {
        let len = self.entries.len();
        if usize::from(index) >= len {
            return Err(NarrowError::IndexOutOfRange { index, len });
        }

        // Collect the parent chain root-ward. `index == 0` narrows to the
        // object bounds themselves (still one entry fetch in hardware to
        // discover that).
        let mut chain = Vec::new();
        let mut cur = index;
        let mut fetched = 0u32;
        while cur != 0 {
            let e = self.entries[usize::from(cur)];
            fetched += 1;
            if e.parent >= cur {
                return Err(NarrowError::MalformedParent { index: cur });
            }
            chain.push(cur);
            cur = e.parent;
        }
        if chain.is_empty() {
            fetched += 1; // root entry fetch
        }

        // Resolve top-down from the root.
        let root = self.entries[0];
        let mut bounds = object_bounds;
        let mut elem_size = root.elem_size;
        let mut divisions = 0u32;
        let mut parent_index = 0u16;
        for &child_idx in chain.iter().rev() {
            let e = self.entries[usize::from(child_idx)];
            if e.base > e.bound {
                return Err(NarrowError::MalformedEntry { index: child_idx });
            }
            let (slot_base, divided) = element_slot(bounds, elem_size, addr, parent_index)?;
            if divided {
                divisions += 1;
            }
            let lower = slot_base + u64::from(e.base);
            let upper = slot_base + u64::from(e.bound);
            if upper > bounds.upper() || lower < bounds.lower() {
                return Err(NarrowError::NotNested { index: child_idx });
            }
            bounds = Bounds::new(lower, upper);
            elem_size = e.elem_size;
            parent_index = child_idx;
        }

        Ok(NarrowOutcome {
            bounds,
            entries_fetched: fetched,
            divisions,
        })
    }
}

/// Incremental builder for a [`LayoutTable`].
#[derive(Clone, Debug)]
pub struct LayoutTableBuilder {
    entries: Vec<LayoutEntry>,
}

impl LayoutTableBuilder {
    /// Starts a table whose root (entry 0) covers an object of
    /// `object_size` bytes. The root's element size equals the object size;
    /// for array *types* use [`LayoutTableBuilder::new_array`].
    #[must_use]
    pub fn new(object_size: u32) -> Self {
        LayoutTableBuilder {
            entries: vec![LayoutEntry {
                parent: 0,
                base: 0,
                bound: object_size,
                elem_size: object_size,
            }],
        }
    }

    /// Starts a table for an array type: the root covers `count` elements
    /// of `elem_size` bytes, and root children are element members.
    #[must_use]
    pub fn new_array(elem_size: u32, count: u32) -> Self {
        LayoutTableBuilder {
            entries: vec![LayoutEntry {
                parent: 0,
                base: 0,
                bound: elem_size * count,
                elem_size,
            }],
        }
    }

    /// Appends a subobject entry and returns its index.
    ///
    /// # Errors
    ///
    /// Returns a [`NarrowError`] if the entry would violate table
    /// invariants (bad parent link, inverted bounds, escaping the parent
    /// element, or exceeding [`MAX_ENTRIES`]).
    pub fn child(
        &mut self,
        parent: u16,
        base: u32,
        bound: u32,
        elem_size: u32,
    ) -> Result<u16, NarrowError> {
        let index =
            u16::try_from(self.entries.len()).map_err(|_| NarrowError::IndexOutOfRange {
                index: u16::MAX,
                len: MAX_ENTRIES,
            })?;
        if self.entries.len() >= MAX_ENTRIES {
            return Err(NarrowError::IndexOutOfRange {
                index,
                len: MAX_ENTRIES,
            });
        }
        if usize::from(parent) >= self.entries.len() {
            return Err(NarrowError::MalformedParent { index });
        }
        if base > bound || (bound > base && elem_size == 0) {
            return Err(NarrowError::MalformedEntry { index });
        }
        if elem_size != 0 && !(bound - base).is_multiple_of(elem_size) {
            return Err(NarrowError::MalformedEntry { index });
        }
        let p = self.entries[usize::from(parent)];
        if bound > p.elem_size {
            return Err(NarrowError::NotNested { index });
        }
        self.entries.push(LayoutEntry {
            parent,
            base,
            bound,
            elem_size,
        });
        Ok(index)
    }

    /// Number of entries appended so far (including the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether only the root entry exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// Finalizes the table.
    #[must_use]
    pub fn build(self) -> LayoutTable {
        let table = LayoutTable {
            entries: self.entries,
        };
        debug_assert!(table.validate().is_ok());
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 9 type:
    /// `struct S { int v1; struct { int v3; int v4; } array[2]; int v5; }`.
    fn figure9() -> LayoutTable {
        let mut b = LayoutTableBuilder::new(24);
        b.child(0, 0, 4, 4).unwrap(); // 1: v1
        let arr = b.child(0, 4, 20, 8).unwrap(); // 2: array
        b.child(arr, 0, 4, 4).unwrap(); // 3: array[].v3
        b.child(arr, 4, 8, 4).unwrap(); // 4: array[].v4
        b.child(0, 20, 24, 4).unwrap(); // 5: v5
        b.build()
    }

    #[test]
    fn figure9_roundtrips_through_memory_image() {
        let t = figure9();
        let bytes = t.to_bytes();
        assert_eq!(bytes.len() as u64, HEADER_SIZE + 6 * ENTRY_SIZE);
        assert_eq!(LayoutTable::from_bytes(&bytes).unwrap(), t);
    }

    #[test]
    fn narrow_to_root_returns_object_bounds() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        let out = t.narrow(ob, 0x1000, 0).unwrap();
        assert_eq!(out.bounds, ob);
        assert_eq!(out.divisions, 0);
    }

    #[test]
    fn narrow_direct_struct_members() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        let v1 = t.narrow(ob, 0x1000, 1).unwrap();
        assert_eq!(v1.bounds, Bounds::new(0x1000, 0x1004));
        assert_eq!(v1.divisions, 0);
        let v5 = t.narrow(ob, 0x1014, 5).unwrap();
        assert_eq!(v5.bounds, Bounds::new(0x1014, 0x1018));
    }

    #[test]
    fn narrow_whole_array_member() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        let arr = t.narrow(ob, 0x1004, 2).unwrap();
        assert_eq!(arr.bounds, Bounds::new(0x1004, 0x1014));
        assert_eq!(arr.divisions, 0, "array itself needs no element selection");
    }

    #[test]
    fn narrow_array_of_struct_member_selects_element_by_address() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        // S.array[0].v3 at 0x1004
        let e0 = t.narrow(ob, 0x1004, 3).unwrap();
        assert_eq!(e0.bounds, Bounds::new(0x1004, 0x1008));
        assert_eq!(e0.divisions, 1, "element selection divides");
        // S.array[1].v3 at 0x100c
        let e1 = t.narrow(ob, 0x100c, 3).unwrap();
        assert_eq!(e1.bounds, Bounds::new(0x100c, 0x1010));
        // S.array[1].v4 at 0x1010
        let e1v4 = t.narrow(ob, 0x1010, 4).unwrap();
        assert_eq!(e1v4.bounds, Bounds::new(0x1010, 0x1014));
        assert_eq!(e1.entries_fetched, 2, "child + parent fetches");
    }

    #[test]
    fn narrow_root_as_runtime_array() {
        // malloc(3 * sizeof(S)): object bounds 3x larger than the type.
        let t = figure9();
        let ob = Bounds::from_base_size(0x2000, 72);
        // v1 of the second S element (element base 0x2018).
        let out = t.narrow(ob, 0x2018, 1).unwrap();
        assert_eq!(out.bounds, Bounds::new(0x2018, 0x201c));
        assert_eq!(out.divisions, 1, "root element selection divides");
    }

    #[test]
    fn narrow_clamps_past_the_end_address() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        // Address past the array selects the last element; resulting bounds
        // exclude the address so a later check fails, but narrowing itself
        // completes like the hardware walker.
        let out = t.narrow(ob, 0x1400, 3).unwrap();
        assert_eq!(out.bounds, Bounds::new(0x100c, 0x1010));
        assert!(!out.bounds.allows_access(0x1400, 1));
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let t = figure9();
        let ob = Bounds::from_base_size(0x1000, 24);
        assert_eq!(
            t.narrow(ob, 0x1000, 6),
            Err(NarrowError::IndexOutOfRange { index: 6, len: 6 })
        );
    }

    #[test]
    fn corrupt_parent_link_detected() {
        let t = figure9();
        let mut bytes = t.to_bytes();
        // Entry 3's parent field lives at HEADER + 3*16; point it at itself.
        let off = (HEADER_SIZE + 3 * ENTRY_SIZE) as usize;
        bytes[off] = 3;
        assert!(matches!(
            LayoutTable::from_bytes(&bytes),
            Err(NarrowError::MalformedParent { index: 3 })
        ));
    }

    #[test]
    fn builder_rejects_escaping_children() {
        let mut b = LayoutTableBuilder::new(24);
        assert!(matches!(
            b.child(0, 8, 32, 4),
            Err(NarrowError::NotNested { .. })
        ));
    }

    #[test]
    fn builder_rejects_forward_parent() {
        let mut b = LayoutTableBuilder::new(24);
        assert!(matches!(
            b.child(7, 0, 4, 4),
            Err(NarrowError::MalformedParent { .. })
        ));
    }

    #[test]
    fn array_type_root() {
        // int[10] as a whole allocation.
        let t = LayoutTableBuilder::new_array(4, 10).build();
        let ob = Bounds::from_base_size(0x3000, 40);
        let out = t.narrow(ob, 0x3010, 0).unwrap();
        assert_eq!(out.bounds, ob, "index 0 is the whole object");
    }

    #[test]
    fn deep_nesting_walks_whole_chain() {
        // struct A { struct B { struct C { int x; } c[2]; } b[2]; }
        // sizes: C = 4? no: C holds one int -> 4; c[2] -> 8; B -> 8; b[2] -> 16; A -> 16.
        let mut bld = LayoutTableBuilder::new(16);
        let b_arr = bld.child(0, 0, 16, 8).unwrap(); // b[2]
        let c_arr = bld.child(b_arr, 0, 8, 4).unwrap(); // c[2] within one B
        let x = bld.child(c_arr, 0, 4, 4).unwrap(); // x within one C
        let t = bld.build();
        let ob = Bounds::from_base_size(0x1000, 16);
        // b[1].c[1].x at 0x100c
        let out = t.narrow(ob, 0x100c, x).unwrap();
        assert_eq!(out.bounds, Bounds::new(0x100c, 0x1010));
        assert_eq!(out.divisions, 2, "two array selections");
        assert_eq!(out.entries_fetched, 3);
    }
}
