//! In-Fat Pointer metadata structures.
//!
//! Three kinds of in-memory metadata make up the In-Fat Pointer design:
//!
//! * **Object metadata** ([`schemes`]) — per-object records holding the
//!   object's base address and size, a pointer to the type's layout table,
//!   and (for the two schemes whose metadata lives in unprotected memory) a
//!   48-bit MAC. Each of the three lookup schemes uses its own encoding to
//!   omit redundant information.
//! * **Layout tables** ([`layout`]) — per-*type* tables describing the
//!   size and placement of every subobject, shared by all objects of the
//!   same type. The `promote` instruction walks this table to narrow object
//!   bounds to subobject bounds.
//! * **The metadata MAC** ([`mac`]) — a truncated keyed hash protecting
//!   metadata integrity against tampering by legacy code or temporal
//!   errors.
//!
//! Everything here is a value-level codec: serialization to/from the byte
//! images the simulated hardware fetches, plus the narrowing algorithm
//! itself. The machinery that *drives* these structures (the IFP unit)
//! lives in `ifp-hw`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod mac;
pub mod schemes;

pub use layout::{LayoutEntry, LayoutTable, LayoutTableBuilder, NarrowError, NarrowOutcome};
pub use mac::{mac48, MacKey};
pub use schemes::{GlobalTableRow, LocalOffsetMeta, ObjectMetadata, SubheapCtrl, SubheapMeta};
