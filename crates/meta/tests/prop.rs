//! Property tests for the metadata structures: narrowing never escapes
//! the object, serialization round-trips, and the MAC catches every
//! tamper.

use ifp_meta::layout::{LayoutTable, LayoutTableBuilder};
use ifp_meta::{mac48, LocalOffsetMeta, MacKey, SubheapMeta};
use ifp_tag::Bounds;
use proptest::prelude::*;

/// Strategy: a random but *valid* layout table. Generates a struct of
/// `n` fields, each either a scalar, an array, or an array-of-struct with
/// two members, mirroring what `layout_gen` emits.
fn arb_table() -> impl Strategy<Value = (LayoutTable, u32 /* object size */)> {
    proptest::collection::vec(
        (1u32..4, 1u32..5), // (field kind selector, element count)
        1..6,
    )
    .prop_map(|fields| {
        // First pass: compute offsets and total size.
        let mut layout = Vec::new();
        let mut off = 0u32;
        for (kind, count) in fields {
            let (fsize, elem) = match kind {
                1 => (8u32, 8u32),                 // scalar
                2 => (8 * count, 8),               // array of scalars
                _ => (16 * count, 16),             // array of 2-member structs
            };
            layout.push((off, fsize, elem, kind));
            off += fsize;
        }
        let total = off.max(8);
        let mut b = LayoutTableBuilder::new(total);
        for &(off, fsize, elem, kind) in &layout {
            let idx = b.child(0, off, off + fsize, elem).expect("valid child");
            if kind == 3 {
                // two 8-byte members inside each 16-byte element
                b.child(idx, 0, 8, 8).expect("member a");
                b.child(idx, 8, 16, 8).expect("member b");
            }
        }
        (b.build(), total)
    })
}

proptest! {
    #[test]
    fn narrowing_never_escapes_object_bounds(
        (table, size) in arb_table(),
        base in (0x1000u64..0x10_0000).prop_map(|b| b & !15),
        addr_off in 0u64..0x400,
        index in 0u16..16,
    ) {
        let ob = Bounds::from_base_size(base, u64::from(size));
        let addr = base + addr_off;
        if let Ok(out) = table.narrow(ob, addr, index) {
            prop_assert!(ob.contains(out.bounds),
                "narrowed {} escapes object {}", out.bounds, ob);
            prop_assert!(out.bounds.size() > 0);
        }
    }

    #[test]
    fn narrowing_is_deterministic((table, size) in arb_table(),
                                  addr_off in 0u64..0x100, index in 0u16..16) {
        let ob = Bounds::from_base_size(0x4000, u64::from(size));
        let a = table.narrow(ob, 0x4000 + addr_off, index);
        let b = table.narrow(ob, 0x4000 + addr_off, index);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn table_roundtrips_through_bytes((table, _size) in arb_table()) {
        let bytes = table.to_bytes();
        let back = LayoutTable::from_bytes(&bytes).expect("valid image");
        prop_assert_eq!(back, table);
    }

    #[test]
    fn runtime_array_roots_stay_in_bounds(
        (table, size) in arb_table(),
        count in 1u64..8,
        addr_off in 0u64..0x1000,
        index in 0u16..16,
    ) {
        // Object bounds covering `count` elements of the root type
        // (the malloc(n * sizeof(T)) case).
        let ob = Bounds::from_base_size(0x8000, u64::from(size) * count);
        if let Ok(out) = table.narrow(ob, 0x8000 + addr_off, index) {
            prop_assert!(ob.contains(out.bounds));
        }
    }

    #[test]
    fn local_offset_meta_roundtrip(size in 1u16..1009, lt in proptest::option::of(0x1000u64..0x10_0000)) {
        let key = MacKey::default_for_sim();
        let lt = lt.unwrap_or(0);
        let meta_addr = 0x7000u64;
        let m = LocalOffsetMeta::new(size, lt, meta_addr, key);
        let back = LocalOffsetMeta::from_bytes(&m.to_bytes());
        prop_assert_eq!(back, m);
        let obj = back.resolve(meta_addr, key).expect("untampered");
        prop_assert_eq!(obj.size, u64::from(size));
        prop_assert_eq!(obj.layout_table, lt);
        prop_assert!(obj.base <= meta_addr);
    }

    #[test]
    fn local_offset_any_bit_flip_is_caught(size in 1u16..1009, lt in 0u64..0x10_0000,
                                           byte in 0usize..10, bit in 0u8..8) {
        // Flips in the size/lt fields must break the MAC (flips inside the
        // MAC field itself trivially mismatch too, but are excluded here
        // to keep the property crisp).
        let key = MacKey::default_for_sim();
        let m = LocalOffsetMeta::new(size, lt & !0xf, 0x7000, key);
        let mut bytes = m.to_bytes();
        bytes[byte] ^= 1 << bit;
        if bytes == m.to_bytes() {
            return Ok(()); // the flip was a no-op (can't happen, but safe)
        }
        let tampered = LocalOffsetMeta::from_bytes(&bytes);
        prop_assert!(tampered.resolve(0x7000, key).is_err());
    }

    #[test]
    fn subheap_meta_resolves_within_slots(
        slot_count in 1u32..32,
        slot_units in 1u32..8,        // slot size in 16-byte units
        off in 0u64..0x1000,
    ) {
        let key = MacKey::default_for_sim();
        let slot = slot_units * 16;
        let object = slot - 3;
        let block = 0x4_0000u64;
        let m = SubheapMeta::new(32, 32 + slot_count * slot, slot, object, 0, block, key);
        let addr = block + off;
        if let Ok(obj) = m.resolve(block, addr, key) {
            prop_assert!(obj.base <= addr);
            prop_assert!(addr < obj.base + u64::from(slot));
            // The object base is slot-aligned within the array.
            prop_assert_eq!((obj.base - block - 32) % u64::from(slot), 0);
            prop_assert_eq!(obj.size, u64::from(object));
        } else {
            // Rejected: the address must be outside the slot array.
            let in_slots = addr >= block + 32 && addr < block + 32 + u64::from(slot_count * slot);
            prop_assert!(!in_slots);
        }
    }

    #[test]
    fn subheap_meta_wrong_block_rejected(shift in 0u64..16) {
        let key = MacKey::default_for_sim();
        let m = SubheapMeta::new(32, 32 + 480, 48, 40, 0, 0x4_0000, key);
        let other = 0x4_0000 + ((shift + 1) << 12);
        prop_assert!(m.resolve(other, other + 64, key).is_err());
    }

    #[test]
    fn mac_distributes(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        let key = MacKey::default_for_sim();
        if a != b {
            // Not a collision-resistance proof, just a smoke property: our
            // 48-bit truncation should essentially never collide on random
            // small inputs.
            prop_assert!(mac48(key, &a) != mac48(key, &b) || a == b);
        }
    }
}
