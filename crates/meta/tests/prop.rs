//! Property tests for the metadata structures: narrowing never escapes
//! the object, serialization round-trips, and the MAC catches every
//! tamper. (Deterministic seeded cases — see `ifp-testutil`.)

use ifp_meta::layout::{LayoutTable, LayoutTableBuilder};
use ifp_meta::{mac48, LocalOffsetMeta, MacKey, SubheapMeta};
use ifp_tag::Bounds;
use ifp_testutil::{run_cases, Rng, DEFAULT_CASES};

/// A random but *valid* layout table. Generates a struct of `n` fields,
/// each either a scalar, an array, or an array-of-struct with two
/// members, mirroring what `layout_gen` emits.
fn arb_table(rng: &mut Rng) -> (LayoutTable, u32 /* object size */) {
    let fields = rng.vec(1, 6, |r| (r.range_u32(1, 4), r.range_u32(1, 5)));
    // First pass: compute offsets and total size.
    let mut layout = Vec::new();
    let mut off = 0u32;
    for (kind, count) in fields {
        let (fsize, elem) = match kind {
            1 => (8u32, 8u32),     // scalar
            2 => (8 * count, 8),   // array of scalars
            _ => (16 * count, 16), // array of 2-member structs
        };
        layout.push((off, fsize, elem, kind));
        off += fsize;
    }
    let total = off.max(8);
    let mut b = LayoutTableBuilder::new(total);
    for &(off, fsize, elem, kind) in &layout {
        let idx = b.child(0, off, off + fsize, elem).expect("valid child");
        if kind == 3 {
            // two 8-byte members inside each 16-byte element
            b.child(idx, 0, 8, 8).expect("member a");
            b.child(idx, 8, 16, 8).expect("member b");
        }
    }
    (b.build(), total)
}

#[test]
fn narrowing_never_escapes_object_bounds() {
    run_cases(0x3e7a1, DEFAULT_CASES, |rng| {
        let (table, size) = arb_table(rng);
        let base = rng.range_u64(0x1000, 0x10_0000) & !15;
        let addr_off = rng.range_u64(0, 0x400);
        let index = rng.range_u16(0, 16);
        let ob = Bounds::from_base_size(base, u64::from(size));
        let addr = base + addr_off;
        if let Ok(out) = table.narrow(ob, addr, index) {
            assert!(
                ob.contains(out.bounds),
                "narrowed {} escapes object {}",
                out.bounds,
                ob
            );
            assert!(out.bounds.size() > 0);
        }
    });
}

#[test]
fn narrowing_is_deterministic() {
    run_cases(0x3e7a2, DEFAULT_CASES, |rng| {
        let (table, size) = arb_table(rng);
        let addr_off = rng.range_u64(0, 0x100);
        let index = rng.range_u16(0, 16);
        let ob = Bounds::from_base_size(0x4000, u64::from(size));
        let a = table.narrow(ob, 0x4000 + addr_off, index);
        let b = table.narrow(ob, 0x4000 + addr_off, index);
        assert_eq!(a, b);
    });
}

#[test]
fn table_roundtrips_through_bytes() {
    run_cases(0x3e7a3, DEFAULT_CASES, |rng| {
        let (table, _size) = arb_table(rng);
        let bytes = table.to_bytes();
        let back = LayoutTable::from_bytes(&bytes).expect("valid image");
        assert_eq!(back, table);
    });
}

#[test]
fn runtime_array_roots_stay_in_bounds() {
    run_cases(0x3e7a4, DEFAULT_CASES, |rng| {
        let (table, size) = arb_table(rng);
        let count = rng.range_u64(1, 8);
        let addr_off = rng.range_u64(0, 0x1000);
        let index = rng.range_u16(0, 16);
        // Object bounds covering `count` elements of the root type
        // (the malloc(n * sizeof(T)) case).
        let ob = Bounds::from_base_size(0x8000, u64::from(size) * count);
        if let Ok(out) = table.narrow(ob, 0x8000 + addr_off, index) {
            assert!(ob.contains(out.bounds));
        }
    });
}

#[test]
fn local_offset_meta_roundtrip() {
    run_cases(0x3e7a5, DEFAULT_CASES, |rng| {
        let size = rng.range_u16(1, 1009);
        let lt = rng.option(|r| r.range_u64(0x1000, 0x10_0000)).unwrap_or(0);
        let key = MacKey::default_for_sim();
        let meta_addr = 0x7000u64;
        let m = LocalOffsetMeta::new(size, lt, meta_addr, key);
        let back = LocalOffsetMeta::from_bytes(&m.to_bytes());
        assert_eq!(back, m);
        let obj = back.resolve(meta_addr, key).expect("untampered");
        assert_eq!(obj.size, u64::from(size));
        assert_eq!(obj.layout_table, lt);
        assert!(obj.base <= meta_addr);
    });
}

#[test]
fn local_offset_any_bit_flip_is_caught() {
    run_cases(0x3e7a6, DEFAULT_CASES, |rng| {
        let size = rng.range_u16(1, 1009);
        let lt = rng.range_u64(0, 0x10_0000);
        let byte = rng.range_usize(0, 10);
        let bit = rng.range_u8(0, 8);
        // Flips in the size/lt fields must break the MAC (flips inside the
        // MAC field itself trivially mismatch too, but are excluded here
        // to keep the property crisp).
        let key = MacKey::default_for_sim();
        let m = LocalOffsetMeta::new(size, lt & !0xf, 0x7000, key);
        let mut bytes = m.to_bytes();
        bytes[byte] ^= 1 << bit;
        if bytes == m.to_bytes() {
            return; // the flip was a no-op (can't happen, but safe)
        }
        let tampered = LocalOffsetMeta::from_bytes(&bytes);
        assert!(tampered.resolve(0x7000, key).is_err());
    });
}

#[test]
fn subheap_meta_resolves_within_slots() {
    run_cases(0x3e7a7, DEFAULT_CASES, |rng| {
        let slot_count = rng.range_u32(1, 32);
        let slot_units = rng.range_u32(1, 8); // slot size in 16-byte units
        let off = rng.range_u64(0, 0x1000);
        let key = MacKey::default_for_sim();
        let slot = slot_units * 16;
        let object = slot - 3;
        let block = 0x4_0000u64;
        let m = SubheapMeta::new(32, 32 + slot_count * slot, slot, object, 0, block, key);
        let addr = block + off;
        if let Ok(obj) = m.resolve(block, addr, key) {
            assert!(obj.base <= addr);
            assert!(addr < obj.base + u64::from(slot));
            // The object base is slot-aligned within the array.
            assert_eq!((obj.base - block - 32) % u64::from(slot), 0);
            assert_eq!(obj.size, u64::from(object));
        } else {
            // Rejected: the address must be outside the slot array.
            let in_slots = addr >= block + 32 && addr < block + 32 + u64::from(slot_count * slot);
            assert!(!in_slots);
        }
    });
}

#[test]
fn subheap_meta_wrong_block_rejected() {
    run_cases(0x3e7a8, DEFAULT_CASES, |rng| {
        let shift = rng.range_u64(0, 16);
        let key = MacKey::default_for_sim();
        let m = SubheapMeta::new(32, 32 + 480, 48, 40, 0, 0x4_0000, key);
        let other = 0x4_0000 + ((shift + 1) << 12);
        assert!(m.resolve(other, other + 64, key).is_err());
    });
}

#[test]
fn mac_distributes() {
    run_cases(0x3e7a9, DEFAULT_CASES, |rng| {
        let a = rng.bytes(64);
        let b = rng.bytes(64);
        let key = MacKey::default_for_sim();
        if a != b {
            // Not a collision-resistance proof, just a smoke property: our
            // 48-bit truncation should essentially never collide on random
            // small inputs.
            assert!(mac48(key, &a) != mac48(key, &b) || a == b);
        }
    });
}
