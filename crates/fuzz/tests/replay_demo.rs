//! Guards the checked-in demo corpus file that anchors the README's
//! worked replay example.
//!
//! The file records a real (since fixed) finding class: before the ASan
//! model gained real-ASan partial-granule shadow encoding, any object
//! whose size was not a multiple of the 8-byte granule had its tail
//! bytes swallowed by the right redzone — a false positive the
//! differential oracle flagged as `defense_disagree`. The demo spec is
//! the shrinker's minimal bad case with a granule-unaligned object, so
//! `ifp-fuzz replay` on the file shows the full triage pipeline (per-mode
//! outcomes, disagreement record, forensics) and reports that the
//! finding no longer reproduces.
//!
//! Regenerate after an intentional format or generator change with:
//!
//! ```text
//! IFP_FUZZ_BLESS=1 cargo test -p ifp-fuzz --test replay_demo
//! ```

use ifp_fuzz::campaign::spec_for_ticket;
use ifp_fuzz::corpus::load_finding;
use ifp_fuzz::oracle::{evaluate, forensic_text, Disagreement, FindingClass};
use ifp_fuzz::shrink::shrink_with;
use ifp_fuzz::Finding;
use ifp_juliet::CaseKind;
use std::path::PathBuf;

const DEMO_SEED: u64 = 0x000d_ecaf;

fn demo_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join("demo-finding.json")
}

/// Rebuilds the demo finding from first principles: the first ticket of
/// the pinned campaign seed whose bad case ends mid-granule, shrunk
/// while preserving that shape.
fn demo_finding() -> Finding {
    let unaligned_bad = |s: &ifp_fuzz::spec::CaseSpec| {
        s.kind == CaseKind::Bad && !s.resolve().object_size.is_multiple_of(8)
    };
    let (iteration, original) = (0..)
        .map(|i| (i, spec_for_ticket(DEMO_SEED, i)))
        .find(|(_, s)| unaligned_bad(s))
        .expect("the generator plants granule-unaligned bad cases");
    let spec = shrink_with(&original, unaligned_bad);
    let size = spec.resolve().object_size;
    let forensics = forensic_text(&spec);
    Finding {
        iteration,
        campaign_seed: DEMO_SEED,
        disagreements: vec![Disagreement {
            class: FindingClass::DefenseDisagree,
            detail: format!(
                "asan: implementation denies but redzone model allows \
                 (object size {size} ends mid-granule; right redzone \
                 poisoned the live tail bytes)"
            ),
        }],
        spec,
        original,
        forensics,
    }
}

#[test]
fn demo_corpus_file_is_current_and_replays() {
    let path = demo_path();
    let expected = demo_finding();
    let mut text = expected.to_json().to_string();
    text.push('\n');

    if std::env::var_os("IFP_FUZZ_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }

    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with IFP_FUZZ_BLESS=1 to create)",
            path.display()
        )
    });
    assert_eq!(
        on_disk, text,
        "demo corpus file is stale; regenerate with IFP_FUZZ_BLESS=1"
    );

    // And the file replays through the public corpus + oracle path.
    let finding = load_finding(&path).unwrap();
    assert_eq!(finding, expected);
    let eval = evaluate(&finding.spec);
    assert!(
        eval.disagreements.is_empty(),
        "the historical ASan finding must stay fixed: {:?}",
        eval.disagreements
    );
    assert_eq!(eval.runs.len(), 4);
}
