//! Seed determinism: the campaign contract is that results are a pure
//! function of `(seed, iterations)` — worker count, scheduling, and
//! reruns must not change a byte.

use ifp_fuzz::campaign::{run_campaign, spec_for_ticket, CampaignConfig, Schedule};
use ifp_fuzz::spec::CaseSpec;
use ifp_fuzz::temporal::{run_temporal_campaign, temporal_spec_for_ticket, TemporalCampaignConfig};

const SEED: u64 = 0x1f9_f022;

fn config(workers: usize, corpus_dir: Option<std::path::PathBuf>) -> CampaignConfig {
    CampaignConfig {
        seed: SEED,
        iterations: 48,
        workers,
        corpus_dir,
        schedule: Schedule::Uniform,
        elide_checks: false,
        tier_checks: false,
        plan_cache_checks: false,
        interproc_checks: false,
    }
}

#[test]
fn same_seed_same_programs() {
    for i in 0..32 {
        let a = spec_for_ticket(SEED, i);
        let b = spec_for_ticket(SEED, i);
        assert_eq!(a, b, "ticket {i} diverged across derivations");
        // Programs are rebuilt from the spec deterministically too.
        let pa = format!("{:?}", a.build_program());
        let pb = format!("{:?}", b.build_program());
        assert_eq!(pa, pb, "ticket {i} built different programs");
    }
}

#[test]
fn same_seed_same_report_across_runs() {
    let r1 = run_campaign(&config(2, None));
    let r2 = run_campaign(&config(2, None));
    assert_eq!(r1.coverage, r2.coverage);
    assert_eq!(r1.findings.len(), r2.findings.len());
    for (a, b) in r1.findings.iter().zip(&r2.findings) {
        assert_eq!(a, b);
    }
}

#[test]
fn worker_count_does_not_change_results() {
    let serial = run_campaign(&config(1, None));
    let parallel = run_campaign(&config(4, None));
    assert_eq!(serial.coverage, parallel.coverage);
    assert_eq!(serial.findings, parallel.findings);
}

#[test]
fn corpus_files_are_identical_across_worker_counts() {
    // Force a finding by persisting a synthetic one through the real
    // campaign path: run two campaigns with corpus dirs and compare the
    // directory contents byte for byte (normally both empty; if the
    // oracle ever disagrees, both must disagree identically).
    let d1 = std::env::temp_dir().join("ifp-fuzz-det-1");
    let d2 = std::env::temp_dir().join("ifp-fuzz-det-2");
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
    let r1 = run_campaign(&config(1, Some(d1.clone())));
    let r2 = run_campaign(&config(3, Some(d2.clone())));
    assert_eq!(r1.corpus_paths.len(), r2.corpus_paths.len());
    for (p1, p2) in r1.corpus_paths.iter().zip(&r2.corpus_paths) {
        assert_eq!(p1.file_name(), p2.file_name());
        assert_eq!(std::fs::read(p1).unwrap(), std::fs::read(p2).unwrap());
    }
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d2);
}

#[test]
fn coverage_guided_schedule_is_worker_invariant() {
    let mut guided = config(1, None);
    guided.schedule = Schedule::CoverageGuided;
    let serial = run_campaign(&guided);
    guided.workers = 4;
    let parallel = run_campaign(&guided);
    assert_eq!(serial.coverage, parallel.coverage);
    assert_eq!(serial.findings, parallel.findings);
}

#[test]
fn temporal_campaign_is_deterministic_across_worker_counts() {
    for i in 0..32 {
        assert_eq!(
            temporal_spec_for_ticket(SEED, i),
            temporal_spec_for_ticket(SEED, i),
            "temporal ticket {i} diverged"
        );
    }
    let cfg = TemporalCampaignConfig {
        seed: SEED,
        iterations: 24,
        workers: 1,
    };
    let serial = run_temporal_campaign(&cfg);
    let parallel = run_temporal_campaign(&TemporalCampaignConfig { workers: 4, ..cfg });
    assert_eq!(serial.coverage, parallel.coverage);
    assert_eq!(serial.findings.len(), parallel.findings.len());
    assert!(serial.findings.is_empty(), "{}", serial.render());
}

#[test]
fn specs_round_trip_through_corpus_json() {
    for i in 0..16 {
        let spec = spec_for_ticket(SEED, i);
        let back = CaseSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back, "ticket {i} spec JSON round trip");
    }
}
