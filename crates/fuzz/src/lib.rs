//! `ifp-fuzz`: differential fuzzing of the In-Fat Pointer toolchain.
//!
//! The fuzzer closes the loop the hand-written Juliet-style suite
//! leaves open: instead of a fixed catalogue of cases, it generates
//! random programs over the compiler's [`ifp_compiler::ProgramBuilder`]
//! IR — nested structs, arrays of structs, interior-pointer arithmetic,
//! calls that pass bounds across functions — each with a planted
//! spatial bug (or none) whose ground truth is known by construction.
//!
//! Every program then runs through a differential oracle
//! ([`oracle::evaluate`]): the VM in baseline, instrumented (both
//! allocators), and no-promote modes, plus the analytic baseline
//! defenses (SoftBound, ASan, MTE) from `ifp_baselines`. The oracle
//! knows what each configuration *must* do — baseline completes good
//! cases, instrumented runs trap exactly the planted bugs, no-promote
//! misses only loaded-pointer flows, the defense implementations match
//! their analytic models — and any deviation is a finding: a missed
//! bug, a false trap, an escaped check, a mode divergence, or a
//! determinism violation.
//!
//! Campaigns ([`campaign::run_campaign`]) drive N iterations across a
//! worker pool. Determinism is load-bearing: iteration `i` derives its
//! RNG by splitting the campaign seed ([`ifp_testutil::Rng::stream`]),
//! so the same seed yields byte-identical programs, verdicts, and
//! corpus files regardless of worker count. Findings are auto-shrunk
//! to minimal reproducers ([`shrink::shrink_with`]), annotated with the
//! `ifp-trace` forensic reconstruction, and persisted as a JSON corpus
//! ([`corpus`]) that `ifp-fuzz replay` can re-execute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod concurrent;
pub mod corpus;
pub mod json;
pub mod mutate;
pub mod oracle;
pub mod shrink;
pub mod spec;
pub mod temporal;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Schedule};
pub use concurrent::{
    run_conc_campaign, ConcCampaignConfig, ConcCampaignReport, ConcCase, ConcSpec,
};
pub use corpus::{load_finding, write_corpus, Finding};
pub use mutate::mutate;
pub use oracle::{
    evaluate, evaluate_with, Disagreement, Evaluation, FindingClass, OracleOptions, RunOutcome,
};
pub use shrink::shrink_with;
pub use spec::CaseSpec;
pub use temporal::{
    evaluate_temporal, run_temporal_campaign, TemporalBug, TemporalCampaignConfig,
    TemporalCampaignReport, TemporalSpec,
};
