//! Minimal JSON reading/writing for corpus files.
//!
//! The workspace is dependency-free, so the corpus format is served by a
//! small hand-rolled value type: objects preserve insertion order (the
//! writer is byte-deterministic), numbers are `i64` (wide values such as
//! seeds are stored as hex strings by the corpus layer), and the parser
//! accepts exactly the subset the writer emits plus insignificant
//! whitespace.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the corpus never needs floats).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved and serialized as-is.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer, when it is one.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_into(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&n.to_string()),
        Value::Str(s) => escape_into(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_into(out, item, indent);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                for _ in 0..indent + 2 {
                    out.push(' ');
                }
                escape_into(out, k);
                out.push_str(": ");
                write_into(out, item, indent + 2);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            for _ in 0..indent {
                out.push(' ');
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_into(&mut s, self, 0);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape `\\{}`", char::from(other))),
                    }
                }
                b => {
                    // Re-decode multibyte UTF-8 starting at b.
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while self.bytes.get(end).is_some_and(|&x| x & 0xc0 == 0x80) {
                            end += 1;
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| e.to_string())?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<i64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{s}`: {e}"))
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut pairs = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.expect(b':')?;
                    let v = self.value()?;
                    pairs.push((k, v));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            _ => self.number(),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message when the input is not in the subset
/// of JSON the corpus writer produces.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(-3)),
            (
                "b".into(),
                Value::Arr(vec![Value::Num(1), Value::Bool(true)]),
            ),
            ("c".into(), Value::Str("x \"y\"\nz".into())),
            ("d".into(), Value::Obj(vec![("e".into(), Value::Null)])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn writer_is_deterministic() {
        let v = Value::Obj(vec![
            ("z".into(), Value::Num(1)),
            ("a".into(), Value::Num(2)),
        ]);
        assert_eq!(v.to_string(), v.clone().to_string());
        // Insertion order, not sorted order.
        assert!(v.to_string().find("\"z\"").unwrap() < v.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = Value::Str("héllo ☃".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }
}
