//! `ifp-fuzz` — differential fuzzing campaigns over the IFP toolchain.
//!
//! ```text
//! ifp-fuzz campaign [--seed S] [--iters N] [--workers W]
//!                   [--corpus DIR] [--elide-checks] [--exec-tier jit]
//!                   [--plan-cache] [--interproc] [--fail-on-finding]
//! ifp-fuzz replay FILE...
//! ifp-fuzz shrink FILE [-o OUT]
//! ```

use ifp_fuzz::campaign::{run_campaign, CampaignConfig, Schedule};
use ifp_fuzz::concurrent::{run_conc_campaign, ConcCampaignConfig};
use ifp_fuzz::corpus::load_finding;
use ifp_fuzz::oracle::{evaluate, forensic_text};
use ifp_fuzz::shrink::shrink_with;
use ifp_fuzz::spec::parse_seed;
use ifp_fuzz::temporal::{run_temporal_campaign, TemporalCampaignConfig};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ifp-fuzz: differential fuzzing of the In-Fat Pointer toolchain

USAGE:
    ifp-fuzz campaign [--seed S] [--iters N] [--workers W]
                      [--corpus DIR] [--schedule uniform|coverage]
                      [--elide-checks] [--exec-tier jit]
                      [--plan-cache] [--interproc] [--fail-on-finding]
    ifp-fuzz temporal [--seed S] [--iters N] [--workers W]
                      [--fail-on-finding]
    ifp-fuzz concurrent [--seed S] [--iters N] [--workers W]
                        [--fail-on-finding]
    ifp-fuzz replay FILE...
    ifp-fuzz shrink FILE [-o OUT]

CAMPAIGN OPTIONS:
    --seed S            campaign seed, decimal or 0x-hex (default 0)
    --iters N           iterations to run (default 1000)
    --workers W         worker threads (default: the host's available
                        parallelism; results are identical for any W)
    --corpus DIR        persist minimized findings as JSON under DIR
    --schedule X        ticket scheduling: uniform (default) or
                        coverage (inverse cell-frequency weighting)
    --elide-checks      rerun each instrumented mode with statically-
                        proven check elision; any verdict or output
                        change is an elision_divergence finding
    --exec-tier jit     rerun each instrumented mode on the fused jit
                        execution tier; any verdict, output, or modeled-
                        statistic change is a tier_divergence finding
                        (`--exec-tier interp` is the no-op default)
    --plan-cache        rerun each instrumented mode (both execution
                        tiers, twice each) through a deliberately
                        capacity-poisoned compiled-artifact cache; any
                        verdict, output, or modeled-statistic change is
                        a cache_divergence finding
    --interproc         rerun each instrumented mode with the inter-
                        procedural summary-informed elision plan on both
                        execution tiers, fresh and through an artifact
                        cache; any verdict, output, or modeled-statistic
                        change is an interproc_divergence finding
    --fail-on-finding   exit nonzero if any finding is produced

TEMPORAL:
    Runs the temporal campaign: seed-derived programs with planted
    use-after-free / double-free / realloc-stale bugs (or none),
    judged against the analytic model of every temporal policy
    (key-check, tag-cycle, quarantine). Same determinism contract as
    `campaign`; same options minus the corpus/schedule knobs.

CONCURRENT:
    Runs the cross-thread campaign: seeded planted races (five
    use-after-free classes with benign twins, pinned interleavings)
    and benign lock-free workloads (Treiber stack, MPMC queue, level
    hash) under the epoch / hazard / interval reclamation trackers.
    Buggy cases must trap with exact forensics; benign cases must stay
    silent; every case must replay bit-identically. Campaigns are a
    pure function of seed\u{d7}iters, invariant under worker count.

REPLAY:
    Re-evaluates each corpus file's minimized spec through the full
    differential oracle and prints per-mode outcomes, disagreements,
    and a fresh forensic report.

SHRINK:
    Re-shrinks a corpus file's original spec (useful after oracle
    changes) and rewrites it to OUT (default: in place).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("temporal") => cmd_temporal(&args[1..]),
        Some("concurrent") => cmd_concurrent(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("ifp-fuzz: unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_campaign(args: &[String]) -> ExitCode {
    let mut config = CampaignConfig {
        seed: 0,
        iterations: 1000,
        workers: ifp_testutil::default_workers(),
        corpus_dir: None,
        schedule: Schedule::Uniform,
        elide_checks: false,
        tier_checks: false,
        plan_cache_checks: false,
        interproc_checks: false,
    };
    let mut fail_on_finding = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--seed" => value("--seed").and_then(|v| {
                parse_seed(&v)
                    .map(|s| config.seed = s)
                    .ok_or(format!("bad seed `{v}`"))
            }),
            "--iters" => value("--iters").and_then(|v| {
                v.parse()
                    .map(|n| config.iterations = n)
                    .map_err(|_| format!("bad iteration count `{v}`"))
            }),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|w: usize| config.workers = w.max(1))
                    .map_err(|_| format!("bad worker count `{v}`"))
            }),
            "--corpus" => value("--corpus").map(|v| config.corpus_dir = Some(PathBuf::from(v))),
            "--schedule" => value("--schedule").and_then(|v| {
                Schedule::from_name(&v)
                    .map(|s| config.schedule = s)
                    .ok_or(format!("bad schedule `{v}` (uniform|coverage)"))
            }),
            "--elide-checks" => {
                config.elide_checks = true;
                Ok(())
            }
            "--exec-tier" => value("--exec-tier").and_then(|v| match v.as_str() {
                "jit" => {
                    config.tier_checks = true;
                    Ok(())
                }
                "interp" => {
                    config.tier_checks = false;
                    Ok(())
                }
                other => Err(format!("bad exec tier `{other}` (interp|jit)")),
            }),
            "--plan-cache" => {
                config.plan_cache_checks = true;
                Ok(())
            }
            "--interproc" => {
                config.interproc_checks = true;
                Ok(())
            }
            "--fail-on-finding" => {
                fail_on_finding = true;
                Ok(())
            }
            other => Err(format!("unknown campaign option `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("ifp-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    }

    let report = run_campaign(&config);
    print!("{}", report.render());
    if fail_on_finding && !report.findings.is_empty() {
        eprintln!(
            "ifp-fuzz: {} finding(s) with --fail-on-finding",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_temporal(args: &[String]) -> ExitCode {
    let mut config = TemporalCampaignConfig {
        seed: 0,
        iterations: 1000,
        workers: ifp_testutil::default_workers(),
    };
    let mut fail_on_finding = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--seed" => value("--seed").and_then(|v| {
                parse_seed(&v)
                    .map(|s| config.seed = s)
                    .ok_or(format!("bad seed `{v}`"))
            }),
            "--iters" => value("--iters").and_then(|v| {
                v.parse()
                    .map(|n| config.iterations = n)
                    .map_err(|_| format!("bad iteration count `{v}`"))
            }),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|w: usize| config.workers = w.max(1))
                    .map_err(|_| format!("bad worker count `{v}`"))
            }),
            "--fail-on-finding" => {
                fail_on_finding = true;
                Ok(())
            }
            other => Err(format!("unknown temporal option `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("ifp-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    }

    let report = run_temporal_campaign(&config);
    print!("{}", report.render());
    if fail_on_finding && !report.findings.is_empty() {
        eprintln!(
            "ifp-fuzz: {} temporal finding(s) with --fail-on-finding",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_concurrent(args: &[String]) -> ExitCode {
    let mut config = ConcCampaignConfig {
        seed: 0,
        iterations: 1000,
        workers: ifp_testutil::default_workers(),
    };
    let mut fail_on_finding = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--seed" => value("--seed").and_then(|v| {
                parse_seed(&v)
                    .map(|s| config.seed = s)
                    .ok_or(format!("bad seed `{v}`"))
            }),
            "--iters" => value("--iters").and_then(|v| {
                v.parse()
                    .map(|n| config.iterations = n)
                    .map_err(|_| format!("bad iteration count `{v}`"))
            }),
            "--workers" => value("--workers").and_then(|v| {
                v.parse()
                    .map(|w: usize| config.workers = w.max(1))
                    .map_err(|_| format!("bad worker count `{v}`"))
            }),
            "--fail-on-finding" => {
                fail_on_finding = true;
                Ok(())
            }
            other => Err(format!("unknown concurrent option `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("ifp-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    }

    let report = run_conc_campaign(&config);
    print!("{}", report.render());
    if fail_on_finding && !report.findings.is_empty() {
        eprintln!(
            "ifp-fuzz: {} concurrent finding(s) with --fail-on-finding",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_replay(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("ifp-fuzz: replay needs at least one corpus file");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in paths {
        let finding = match load_finding(std::path::Path::new(path)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("ifp-fuzz: {e}");
                failed = true;
                continue;
            }
        };
        println!(
            "replay {path}: iteration {} of campaign seed {:#x}",
            finding.iteration, finding.campaign_seed
        );
        println!("  recorded: {}", names(&finding));
        let eval = evaluate(&finding.spec);
        for (mode, outcome) in &eval.runs {
            println!("  {mode:<12} {}", outcome.label());
        }
        if eval.disagreements.is_empty() {
            println!("  verdict: no longer reproduces");
        } else {
            for d in &eval.disagreements {
                println!("  disagreement [{}]: {}", d.class.name(), d.detail);
            }
        }
        println!("  forensics: {}", forensic_text(&finding.spec));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn names(finding: &ifp_fuzz::Finding) -> String {
    finding
        .disagreements
        .iter()
        .map(|d| d.class.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn cmd_shrink(args: &[String]) -> ExitCode {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => match it.next() {
                Some(v) => output = Some(v.clone()),
                None => {
                    eprintln!("ifp-fuzz: -o needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other if input.is_none() => input = Some(other.to_string()),
            other => {
                eprintln!("ifp-fuzz: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(input) = input else {
        eprintln!("ifp-fuzz: shrink needs a corpus file");
        return ExitCode::FAILURE;
    };
    let mut finding = match load_finding(std::path::Path::new(&input)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ifp-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let classes: BTreeSet<_> = finding.disagreements.iter().map(|d| d.class).collect();
    finding.spec = shrink_with(&finding.original, |cand| {
        evaluate(cand)
            .disagreements
            .iter()
            .any(|d| classes.contains(&d.class))
    });
    finding.forensics = forensic_text(&finding.spec);
    let mut text = finding.to_json().to_string();
    text.push('\n');
    let target = output.map_or_else(|| PathBuf::from(&input), PathBuf::from);
    if let Err(e) = std::fs::write(&target, text) {
        eprintln!("ifp-fuzz: cannot write {}: {e}", target.display());
        return ExitCode::FAILURE;
    }
    println!("shrunk {} -> {}", input, target.display());
    println!("  minimized: {:?}", finding.spec);
    ExitCode::SUCCESS
}
