//! The differential oracle: runs one spec through every VM mode and the
//! baseline defenses, and cross-checks each verdict against the spec's
//! ground truth.
//!
//! The expectation rules encode the *documented* semantics of the
//! reproduction, so every deviation is a finding rather than noise:
//!
//! * Baseline runs of good cases complete; bad baseline runs may do
//!   anything (that asymmetry is the motivation for the defense).
//! * Fully instrumented runs (wrapped and subheap allocators) complete
//!   every good case with baseline-identical output and stop every bad
//!   case with a safety trap *at a check* — a wild page fault counts as
//!   an escaped check.
//! * The no-promote ablation still detects register-carried flows (gep
//!   field steps narrow bounds statically) but is excused on
//!   `LoadedFlow` cases, where detection depends on promote narrowing —
//!   those may complete, trap, or crash.
//! * Rerunning an instrumented mode must reproduce the outcome and
//!   output byte-for-byte (determinism).
//! * Each `ifp_baselines` defense is compared against an *analytic*
//!   model of its mechanism (exact bounds for SoftBound, redzone bands
//!   with partial granules for ASan, granule tags for MTE) evaluated on
//!   the spec's resolved layout.

use crate::spec::{CaseSpec, Resolved};
use ifp_baselines::{Asan, Defense, Mte, PtrMeta, SoftBound};
use ifp_juliet::{CaseKind, Variant};
use ifp_plancache::PlanCache;
use ifp_trace::TraceConfig;
use ifp_vm::{run, AllocatorKind, ExecTier, Mode, RunResult, VmConfig, VmError};
use std::fmt;

/// Address the defense models place the object at (granule-aligned for
/// both the ASan and MTE models).
const MODEL_BASE: u64 = 0x1_0000;

/// Instruction budget per run; generated programs are tiny.
const FUEL: u64 = 10_000_000;

/// What one VM run did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Ran to completion.
    Completed {
        /// `main`'s return value.
        exit: i64,
        /// Everything printed.
        output: Vec<i64>,
    },
    /// Stopped by a spatial-safety trap at a check.
    Detected {
        /// Trap rendering.
        trap: String,
    },
    /// Stopped by a non-safety trap (wild page fault).
    TrappedOther {
        /// Trap rendering.
        trap: String,
    },
    /// Stopped outside the detection model.
    Errored {
        /// Error rendering.
        error: String,
    },
}

impl RunOutcome {
    /// Short outcome label for summaries ("completed", "detected", ...).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RunOutcome::Completed { .. } => "completed",
            RunOutcome::Detected { .. } => "detected",
            RunOutcome::TrappedOther { .. } => "trapped-other",
            RunOutcome::Errored { .. } => "errored",
        }
    }
}

/// Classification of an oracle disagreement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingClass {
    /// A good case trapped or errored where completion was required.
    FalseTrap,
    /// A bad case completed where detection was required.
    MissedBug,
    /// A bad case crashed on a wild access instead of trapping at a check.
    EscapedCheck,
    /// The VM reported an internal error (allocator, fuel, bad program).
    VmError,
    /// An instrumented good run's output diverged from the baseline's.
    OutputDivergence,
    /// A rerun of the same mode produced a different outcome or output.
    Nondeterminism,
    /// A defense implementation disagreed with its analytic model or
    /// guaranteed verdict.
    DefenseDisagree,
    /// The generator emitted IR the `ifp-analyze` verifier rejects.
    MalformedIr,
    /// Rerunning an instrumented mode with statically-proven check
    /// elision changed the verdict or the output.
    ElisionDivergence,
    /// Rerunning an instrumented mode on the jit execution tier changed
    /// the verdict, the output, or any modeled statistic.
    TierDivergence,
    /// Rerunning a mode through a capacity-poisoned artifact cache
    /// (evict/recompile churn) changed the verdict, the output, or any
    /// modeled statistic.
    CacheDivergence,
    /// The combined inter-procedural leg — check elision under the
    /// summary-informed plan, executed on both tiers through the
    /// artifact cache — changed the verdict, the output, or diverged
    /// across tiers or cache paths on any modeled statistic.
    InterprocDivergence,
    /// The harness itself panicked while evaluating the case.
    HarnessPanic,
}

impl FindingClass {
    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FindingClass::FalseTrap => "false_trap",
            FindingClass::MissedBug => "missed_bug",
            FindingClass::EscapedCheck => "escaped_check",
            FindingClass::VmError => "vm_error",
            FindingClass::OutputDivergence => "output_divergence",
            FindingClass::Nondeterminism => "nondeterminism",
            FindingClass::DefenseDisagree => "defense_disagree",
            FindingClass::MalformedIr => "malformed_ir",
            FindingClass::ElisionDivergence => "elision_divergence",
            FindingClass::TierDivergence => "tier_divergence",
            FindingClass::CacheDivergence => "cache_divergence",
            FindingClass::InterprocDivergence => "interproc_divergence",
            FindingClass::HarnessPanic => "harness_panic",
        }
    }

    /// Parses a [`FindingClass::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<FindingClass> {
        [
            FindingClass::FalseTrap,
            FindingClass::MissedBug,
            FindingClass::EscapedCheck,
            FindingClass::VmError,
            FindingClass::OutputDivergence,
            FindingClass::Nondeterminism,
            FindingClass::DefenseDisagree,
            FindingClass::MalformedIr,
            FindingClass::ElisionDivergence,
            FindingClass::TierDivergence,
            FindingClass::CacheDivergence,
            FindingClass::InterprocDivergence,
            FindingClass::HarnessPanic,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One disagreement the oracle flagged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Disagreement {
    /// Classification.
    pub class: FindingClass,
    /// Human-readable specifics (mode, outcome, expectation).
    pub detail: String,
}

/// Everything the oracle observed for one spec.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Outcome per mode, in run order (baseline, wrapped, subheap,
    /// no-promote).
    pub runs: Vec<(String, RunOutcome)>,
    /// Every disagreement found. Empty = the case agrees everywhere.
    pub disagreements: Vec<Disagreement>,
    /// Modeled instructions executed across every run the oracle made
    /// (including the determinism rerun) — the campaign's throughput
    /// denominator.
    pub modeled_instrs: u64,
}

/// Runs `program` under `mode` and classifies the result, also
/// reporting the modeled instructions executed (up to the trap for
/// trapping runs, zero for harness-level errors).
#[must_use]
pub fn run_mode_counted(program: &ifp_compiler::Program, mode: Mode) -> (RunOutcome, u64) {
    let mut cfg = VmConfig::with_mode(mode);
    cfg.fuel = FUEL;
    run_config_counted(program, &cfg)
}

fn run_config_counted(program: &ifp_compiler::Program, cfg: &VmConfig) -> (RunOutcome, u64) {
    match run(program, cfg) {
        Ok(r) => (
            RunOutcome::Completed {
                exit: r.exit_code,
                output: r.output,
            },
            r.stats.total_instrs(),
        ),
        Err(VmError::Trap {
            trap, func, stats, ..
        }) => {
            let outcome = if trap.is_safety_violation() {
                RunOutcome::Detected {
                    trap: format!("{trap} in `{func}`"),
                }
            } else {
                RunOutcome::TrappedOther {
                    trap: format!("{trap} in `{func}`"),
                }
            };
            (outcome, stats.total_instrs())
        }
        Err(e) => (
            RunOutcome::Errored {
                error: e.to_string(),
            },
            0,
        ),
    }
}

/// Runs `program` under `mode` and classifies the result.
#[must_use]
pub fn run_mode(program: &ifp_compiler::Program, mode: Mode) -> RunOutcome {
    run_mode_counted(program, mode).0
}

/// [`run_mode_counted`] with `elide_checks` enabled: the `ifp-analyze`
/// interval analysis runs over the program and every statically proven
/// check, tag update, and dead promote is skipped.
#[must_use]
pub fn run_mode_elided_counted(program: &ifp_compiler::Program, mode: Mode) -> (RunOutcome, u64) {
    let mut cfg = VmConfig::with_mode(mode);
    cfg.fuel = FUEL;
    cfg.elide_checks = true;
    run_config_counted(program, &cfg)
}

/// Like [`run_config_counted`], but additionally digests the complete
/// [`ifp_vm::RunStats`] (its `Debug` rendering, byte-exact) so two runs
/// can be compared on *every* modeled statistic, not just the verdict.
/// The digest is empty for harness-level errors, which carry no stats.
fn run_config_digest(program: &ifp_compiler::Program, cfg: &VmConfig) -> (RunOutcome, String, u64) {
    digest_result(run(program, cfg))
}

/// Like [`run_config_digest`], but routes compilation through an
/// artifact cache. Execution semantics must be unaffected by whether
/// the compiled artifact was a hit, a miss, or an eviction casualty.
fn run_config_digest_cached(
    program: &ifp_compiler::Program,
    cfg: &VmConfig,
    cache: &PlanCache,
) -> (RunOutcome, String, u64) {
    digest_result(cache.run(program, cfg))
}

fn digest_result(result: Result<RunResult, VmError>) -> (RunOutcome, String, u64) {
    match result {
        Ok(r) => (
            RunOutcome::Completed {
                exit: r.exit_code,
                output: r.output,
            },
            format!("{:?}", r.stats),
            r.stats.total_instrs(),
        ),
        Err(VmError::Trap {
            trap, func, stats, ..
        }) => {
            let outcome = if trap.is_safety_violation() {
                RunOutcome::Detected {
                    trap: format!("{trap} in `{func}`"),
                }
            } else {
                RunOutcome::TrappedOther {
                    trap: format!("{trap} in `{func}`"),
                }
            };
            (outcome, format!("{stats:?}"), stats.total_instrs())
        }
        Err(e) => (
            RunOutcome::Errored {
                error: e.to_string(),
            },
            String::new(),
            0,
        ),
    }
}

/// Reruns the instrumented (subheap) mode with full tracing and renders
/// what the trap forensics reconstructed — the triage attachment every
/// finding carries.
#[must_use]
pub fn forensic_text(spec: &CaseSpec) -> String {
    let program = spec.build_program();
    let mut cfg = VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
    cfg.fuel = FUEL;
    cfg.trace = TraceConfig::all();
    match run(&program, &cfg) {
        Ok(_) => "no trap raised under the instrumented run (completed)".into(),
        Err(VmError::Trap {
            forensics: Some(report),
            ..
        }) => report.render(),
        Err(VmError::Trap {
            trap,
            func,
            forensics: None,
            ..
        }) => format!("trap {trap} in `{func}` (no forensic ring available)"),
        Err(e) => format!("vm error: {e}"),
    }
}

fn push(out: &mut Vec<Disagreement>, class: FindingClass, detail: impl Into<String>) {
    out.push(Disagreement {
        class,
        detail: detail.into(),
    });
}

/// Expectation for a fully instrumented run.
fn check_instrumented(
    out: &mut Vec<Disagreement>,
    label: &str,
    kind: CaseKind,
    outcome: &RunOutcome,
) {
    match (kind, outcome) {
        (CaseKind::Good, RunOutcome::Completed { .. })
        | (CaseKind::Bad, RunOutcome::Detected { .. }) => {}
        (CaseKind::Good, o) => push(
            out,
            FindingClass::FalseTrap,
            format!("{label}: good case {}", o.label()),
        ),
        (CaseKind::Bad, RunOutcome::Completed { .. }) => push(
            out,
            FindingClass::MissedBug,
            format!("{label}: bad case completed undetected"),
        ),
        (CaseKind::Bad, RunOutcome::TrappedOther { trap }) => push(
            out,
            FindingClass::EscapedCheck,
            format!("{label}: bad case crashed past the checks ({trap})"),
        ),
        (CaseKind::Bad, RunOutcome::Errored { error }) => {
            push(out, FindingClass::VmError, format!("{label}: {error}"))
        }
    }
}

/// The ASan analytic model: a byte is unaddressable when it falls in the
/// left redzone or in the right band that starts at the object's end and
/// runs to the end of the granule-aligned right redzone (partial tail
/// granules guard the bytes between `size` and the next granule
/// boundary).
/// Rounds the non-negative `x` up to a multiple of `align` (signed
/// `next_multiple_of` is still unstable).
fn align_up(x: i64, align: i64) -> i64 {
    (x as u64).next_multiple_of(align as u64) as i64
}

fn asan_denies(r: &Resolved, lo: i64, hi: i64) -> bool {
    let base = MODEL_BASE as i64;
    let size = r.object_size as i64;
    let left = (base - 16, base);
    let right = (base + size, align_up(base + size, 8) + 16);
    let (a0, a1) = (base + lo, base + hi);
    (a0 < left.1 && a1 > left.0) || (a0 < right.1 && a1 > right.0)
}

/// The MTE analytic model: the access passes when every touched granule
/// carries the pointer's tag — i.e. it stays within the granule-rounded
/// object extent, or the tag happens to be zero (untagged memory).
fn mte_denies(r: &Resolved, lo: i64, hi: i64, tag: u8) -> bool {
    let base = MODEL_BASE as i64;
    let tagged_hi = base + align_up(r.object_size as i64, 16);
    let (a0, a1) = (base + lo, base + hi);
    let inside = a0 >= base && a1 <= tagged_hi;
    !inside && tag != 0
}

/// Compares each defense implementation against its analytic model on
/// the planted accesses.
fn check_defenses(out: &mut Vec<Disagreement>, spec: &CaseSpec, r: &Resolved) {
    let good_lo = r.arr_offset as i64 + r.good_idx * r.elem_size as i64;
    let good = (good_lo, good_lo + r.elem_size as i64);
    let bad = (r.bad_lo, r.bad_hi);
    let addr = |off: i64| (MODEL_BASE as i64 + off) as u64;

    // SoftBound: exact bounds, narrowed to the target array when the
    // program derives a field pointer. Good allowed, bad denied, always.
    let mut sb = SoftBound::new();
    let meta = sb.on_alloc(MODEL_BASE, r.object_size);
    let meta = if spec.wrap_struct {
        sb.on_subobject(
            meta,
            MODEL_BASE + r.arr_offset,
            u64::from(spec.len) * r.elem_size,
        )
    } else {
        meta
    };
    if !sb.check(meta, addr(good.0), r.elem_size) {
        push(
            out,
            FindingClass::DefenseDisagree,
            "softbound: denied the in-bounds access",
        );
    }
    if spec.kind == CaseKind::Bad && sb.check(meta, addr(bad.0), r.elem_size) {
        push(
            out,
            FindingClass::DefenseDisagree,
            format!(
                "softbound: allowed the planted {} at object offset {}",
                r.cwe.name(),
                r.bad_lo
            ),
        );
    }

    // ASan: implementation vs the redzone-band model.
    let mut asan = Asan::new();
    let ameta = asan.on_alloc(MODEL_BASE, r.object_size);
    if !asan.check(ameta, addr(good.0), r.elem_size) {
        push(
            out,
            FindingClass::DefenseDisagree,
            "asan: denied the in-bounds access",
        );
    }
    if spec.kind == CaseKind::Bad {
        let impl_denies = !asan.check(ameta, addr(bad.0), r.elem_size);
        let model_denies = asan_denies(r, bad.0, bad.1);
        if impl_denies != model_denies {
            push(
                out,
                FindingClass::DefenseDisagree,
                format!(
                    "asan: implementation {} but redzone model {} (offsets {}..{})",
                    if impl_denies { "denies" } else { "allows" },
                    if model_denies { "denies" } else { "allows" },
                    bad.0,
                    bad.1
                ),
            );
        }
    }

    // MTE: implementation vs the granule-tag model, per-spec tag stream.
    let mut mte = Mte::with_seed(spec.seed);
    let mmeta = mte.on_alloc(MODEL_BASE, r.object_size);
    let tag = match mmeta {
        PtrMeta::Tag(t) => t,
        _ => 0,
    };
    if !mte.check(mmeta, addr(good.0), r.elem_size) {
        push(
            out,
            FindingClass::DefenseDisagree,
            "mte: denied the in-bounds access",
        );
    }
    if spec.kind == CaseKind::Bad {
        let impl_denies = !mte.check(mmeta, addr(bad.0), r.elem_size);
        let model_denies = mte_denies(r, bad.0, bad.1, tag);
        if impl_denies != model_denies {
            push(
                out,
                FindingClass::DefenseDisagree,
                format!(
                    "mte: implementation {} but tag model {} (tag {tag}, offsets {}..{})",
                    if impl_denies { "denies" } else { "allows" },
                    if model_denies { "denies" } else { "allows" },
                    bad.0,
                    bad.1
                ),
            );
        }
        if !r.escapes && impl_denies {
            push(
                out,
                FindingClass::DefenseDisagree,
                "mte: claimed an intra-object detection it cannot provide",
            );
        }
    }
}

/// Knobs extending the differential matrix.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleOptions {
    /// Rerun the wrapped and subheap modes with statically-proven check
    /// elision and require byte-identical verdicts and output — the
    /// safety gate for `ifp-analyze`'s elision plan.
    pub elide_differential: bool,
    /// Rerun the wrapped and subheap modes on the jit execution tier and
    /// require byte-identical verdicts, output, and complete modeled
    /// statistics — the safety gate for `ifp-jit`'s fused executor.
    pub tier_differential: bool,
    /// Rerun the wrapped and subheap modes (interpreter and jit tiers)
    /// through a deliberately capacity-poisoned artifact cache — so
    /// nearly every lookup churns through insert/evict/recompile — and
    /// require byte-identical verdicts, output, and complete modeled
    /// statistics. The safety gate for `ifp-plancache`.
    pub plan_cache_differential: bool,
    /// Rerun the wrapped and subheap modes with summary-informed check
    /// elision on *both* execution tiers, fresh and through an artifact
    /// cache, and require the unelided verdict plus bit-identical
    /// modeled statistics across tiers and cache paths — the combined
    /// safety gate for the `ifp-analyze` inter-procedural plan.
    pub interproc_differential: bool,
}

/// Runs the full differential matrix for one spec.
#[must_use]
pub fn evaluate(spec: &CaseSpec) -> Evaluation {
    evaluate_with(spec, OracleOptions::default())
}

/// [`evaluate`] with extra differential legs enabled.
#[must_use]
pub fn evaluate_with(spec: &CaseSpec, opts: OracleOptions) -> Evaluation {
    let r = spec.resolve();
    let program = spec.build_program();

    // Layer-1 gate: every program the generator emits must pass the
    // strict IR verifier. A diagnostic here is a generator bug the VM's
    // looser `validate` would mask (or worse, execute).
    let verifier_diags = ifp_analyze::verify(&program);
    if !verifier_diags.is_empty() {
        let disagreements = verifier_diags
            .iter()
            .map(|d| Disagreement {
                class: FindingClass::MalformedIr,
                detail: d.to_string(),
            })
            .collect();
        return Evaluation {
            runs: Vec::new(),
            disagreements,
            modeled_instrs: 0,
        };
    }

    let (baseline, i0) = run_mode_counted(&program, Mode::Baseline);
    let (wrapped, i1) = run_mode_counted(&program, Mode::instrumented(AllocatorKind::Wrapped));
    let (subheap, i2) = run_mode_counted(&program, Mode::instrumented(AllocatorKind::Subheap));
    let (no_promote, i3) = run_mode_counted(
        &program,
        Mode::Instrumented {
            allocator: AllocatorKind::Subheap,
            no_promote: true,
        },
    );
    let (subheap_again, i4) =
        run_mode_counted(&program, Mode::instrumented(AllocatorKind::Subheap));
    let mut modeled_instrs = i0 + i1 + i2 + i3 + i4;

    let mut out = Vec::new();

    // Baseline: good must complete; bad baseline behavior is unspecified.
    if spec.kind == CaseKind::Good {
        if let RunOutcome::Completed { exit, .. } = &baseline {
            if *exit != 0 {
                push(
                    &mut out,
                    FindingClass::OutputDivergence,
                    format!("baseline: good case exited {exit}"),
                );
            }
        } else {
            push(
                &mut out,
                FindingClass::FalseTrap,
                format!("baseline: good case {}", baseline.label()),
            );
        }
    }

    // Fully instrumented modes: hard requirements both ways.
    check_instrumented(&mut out, "wrapped", spec.kind, &wrapped);
    check_instrumented(&mut out, "subheap", spec.kind, &subheap);

    // No-promote ablation: loaded-flow detection is excused, everything
    // else keeps the full contract (field geps narrow in-register).
    if spec.variant == Variant::LoadedFlow {
        if spec.kind == CaseKind::Good {
            // Good loaded flows must still complete: promote becoming a
            // NOP never *adds* a trap.
            if !matches!(no_promote, RunOutcome::Completed { .. }) {
                push(
                    &mut out,
                    FindingClass::FalseTrap,
                    format!("no-promote: good case {}", no_promote.label()),
                );
            }
        }
        // Bad loaded flows under no-promote may complete (miss), trap or
        // crash: the unchecked wild access is exactly the ablated
        // protection.
    } else {
        check_instrumented(&mut out, "no-promote", spec.kind, &no_promote);
    }

    // Output divergence: instrumentation must be semantically invisible
    // on good cases.
    if spec.kind == CaseKind::Good {
        if let RunOutcome::Completed { exit, output } = &baseline {
            for (label, o) in [
                ("wrapped", &wrapped),
                ("subheap", &subheap),
                ("no-promote", &no_promote),
            ] {
                if let RunOutcome::Completed {
                    exit: e2,
                    output: out2,
                } = o
                {
                    if e2 != exit || out2 != output {
                        push(
                            &mut out,
                            FindingClass::OutputDivergence,
                            format!("{label}: output differs from baseline"),
                        );
                    }
                }
            }
        }
    }

    // Determinism: the same mode twice, byte-identical.
    if subheap_again != subheap {
        push(
            &mut out,
            FindingClass::Nondeterminism,
            format!(
                "subheap rerun: {} then {}",
                subheap.label(),
                subheap_again.label()
            ),
        );
    }

    // Elision differential: skipping statically proven checks must not
    // change a single verdict or output byte in either allocator mode.
    if opts.elide_differential {
        for (label, mode, reference) in [
            (
                "wrapped",
                Mode::instrumented(AllocatorKind::Wrapped),
                &wrapped,
            ),
            (
                "subheap",
                Mode::instrumented(AllocatorKind::Subheap),
                &subheap,
            ),
        ] {
            let (elided, ie) = run_mode_elided_counted(&program, mode);
            modeled_instrs += ie;
            if elided != *reference {
                push(
                    &mut out,
                    FindingClass::ElisionDivergence,
                    format!(
                        "{label}: {} without elision, {} with",
                        reference.label(),
                        elided.label()
                    ),
                );
            }
        }
    }

    // Tier differential: the fused jit executor must reproduce the
    // interpreter's verdict, output, and *every* modeled statistic.
    // Both tiers rerun here so the stats digests come from the same
    // configs (the verdict is additionally pinned to the reference run).
    if opts.tier_differential {
        for (label, mode, reference) in [
            (
                "wrapped",
                Mode::instrumented(AllocatorKind::Wrapped),
                &wrapped,
            ),
            (
                "subheap",
                Mode::instrumented(AllocatorKind::Subheap),
                &subheap,
            ),
        ] {
            let mut icfg = VmConfig::with_mode(mode);
            icfg.fuel = FUEL;
            let mut jcfg = icfg;
            jcfg.exec_tier = ExecTier::Jit;
            let (iout, idig, ii) = run_config_digest(&program, &icfg);
            let (jout, jdig, ji) = run_config_digest(&program, &jcfg);
            modeled_instrs += ii + ji;
            if jout != iout || jout != *reference {
                push(
                    &mut out,
                    FindingClass::TierDivergence,
                    format!(
                        "{label}: {} on the interpreter, {} on the jit tier",
                        iout.label(),
                        jout.label()
                    ),
                );
            } else if jdig != idig {
                push(
                    &mut out,
                    FindingClass::TierDivergence,
                    format!("{label}: modeled statistics differ across tiers"),
                );
            }
        }
    }

    // Plan-cache differential: running through a capacity-poisoned
    // artifact cache (evict/recompile churn on nearly every lookup)
    // must reproduce the fresh-compile verdict, output, and every
    // modeled statistic — on both execution tiers. Each config runs
    // through the cache twice so both the cold-insert path and the
    // reuse-or-evicted path are exercised.
    if opts.plan_cache_differential {
        let cache = PlanCache::poisoned();
        for (label, mode, tier, reference) in [
            (
                "wrapped",
                Mode::instrumented(AllocatorKind::Wrapped),
                ExecTier::Interp,
                &wrapped,
            ),
            (
                "subheap",
                Mode::instrumented(AllocatorKind::Subheap),
                ExecTier::Interp,
                &subheap,
            ),
            (
                "subheap-jit",
                Mode::instrumented(AllocatorKind::Subheap),
                ExecTier::Jit,
                &subheap,
            ),
        ] {
            let mut cfg = VmConfig::with_mode(mode);
            cfg.fuel = FUEL;
            cfg.exec_tier = tier;
            let (fout, fdig, fi) = run_config_digest(&program, &cfg);
            modeled_instrs += fi;
            for pass in ["cold", "reuse"] {
                let (cout, cdig, ci) = run_config_digest_cached(&program, &cfg, &cache);
                modeled_instrs += ci;
                if cout != fout || &cout != reference {
                    push(
                        &mut out,
                        FindingClass::CacheDivergence,
                        format!(
                            "{label}: {} fresh, {} through the poisoned cache ({pass} pass)",
                            fout.label(),
                            cout.label()
                        ),
                    );
                } else if cdig != fdig {
                    push(
                        &mut out,
                        FindingClass::CacheDivergence,
                        format!(
                            "{label}: modeled statistics differ through the poisoned cache \
                             ({pass} pass)"
                        ),
                    );
                }
            }
        }
    }

    // Inter-procedural differential: the richest elided configuration —
    // the summary-informed plan driving check elision, on both execution
    // tiers, compiled fresh and through an artifact cache — must keep
    // the unelided verdict and stay bit-identical across every axis.
    if opts.interproc_differential {
        let cache = PlanCache::new();
        for (label, mode, reference) in [
            (
                "wrapped",
                Mode::instrumented(AllocatorKind::Wrapped),
                &wrapped,
            ),
            (
                "subheap",
                Mode::instrumented(AllocatorKind::Subheap),
                &subheap,
            ),
        ] {
            let mut icfg = VmConfig::with_mode(mode);
            icfg.fuel = FUEL;
            icfg.elide_checks = true;
            let mut jcfg = icfg;
            jcfg.exec_tier = ExecTier::Jit;
            let (iout, idig, ii) = run_config_digest(&program, &icfg);
            let (jout, jdig, ji) = run_config_digest(&program, &jcfg);
            modeled_instrs += ii + ji;
            if iout != *reference {
                push(
                    &mut out,
                    FindingClass::InterprocDivergence,
                    format!(
                        "{label}: {} without elision, {} with the interprocedural plan",
                        reference.label(),
                        iout.label()
                    ),
                );
            }
            if jout != iout || jdig != idig {
                push(
                    &mut out,
                    FindingClass::InterprocDivergence,
                    format!("{label}: elided tiers disagree (interp vs jit)"),
                );
            }
            for (tier_label, cfg, fout, fdig) in [
                ("interp", &icfg, &iout, &idig),
                ("jit", &jcfg, &jout, &jdig),
            ] {
                let (cout, cdig, ci) = run_config_digest_cached(&program, cfg, &cache);
                modeled_instrs += ci;
                if &cout != fout || &cdig != fdig {
                    push(
                        &mut out,
                        FindingClass::InterprocDivergence,
                        format!("{label}/{tier_label}: cached elided run diverged from fresh"),
                    );
                }
            }
        }
    }

    // Defense models.
    check_defenses(&mut out, spec, &r);

    Evaluation {
        runs: vec![
            ("baseline".into(), baseline),
            ("wrapped".into(), wrapped),
            ("subheap".into(), subheap),
            ("no-promote".into(), no_promote),
        ],
        disagreements: out,
        modeled_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Dir, FieldSpec};
    use ifp_juliet::Site;
    use ifp_testutil::Rng;

    fn spec(kind: CaseKind, variant: Variant, site: Site, wrap: bool, dir: Dir) -> CaseSpec {
        let mut s = CaseSpec {
            seed: 3,
            site,
            variant,
            kind,
            dir,
            is_read: false,
            wrap_struct: wrap,
            pre: vec![FieldSpec {
                elem_size: 4,
                count: 4,
            }],
            elem_size: 4,
            len: 6,
            post: vec![FieldSpec {
                elem_size: 8,
                count: 2,
            }],
            deco: 2,
            oob: 1,
            filler: 2,
        };
        s.sanitize();
        s
    }

    #[test]
    fn clean_cases_produce_no_disagreements() {
        for variant in Variant::ALL {
            for site in Site::ALL {
                for kind in [CaseKind::Good, CaseKind::Bad] {
                    for wrap in [false, true] {
                        for dir in [Dir::Over, Dir::Under] {
                            let s = spec(kind, variant, site, wrap, dir);
                            let e = evaluate(&s);
                            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_specs_are_clean() {
        for i in 0..40 {
            let s = CaseSpec::generate(&mut Rng::stream(0xfacade, i));
            let e = evaluate(&s);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
        }
    }

    #[test]
    fn elide_differential_is_clean_on_random_specs() {
        let opts = OracleOptions {
            elide_differential: true,
            ..OracleOptions::default()
        };
        for i in 0..25 {
            let s = CaseSpec::generate(&mut Rng::stream(0xe11de, i));
            let e = evaluate_with(&s, opts);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
        }
    }

    #[test]
    fn tier_differential_is_clean_on_random_specs() {
        let opts = OracleOptions {
            tier_differential: true,
            ..OracleOptions::default()
        };
        for i in 0..25 {
            let s = CaseSpec::generate(&mut Rng::stream(0x71e4, i));
            let e = evaluate_with(&s, opts);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
        }
    }

    #[test]
    fn plan_cache_differential_is_clean_on_random_specs() {
        let opts = OracleOptions {
            plan_cache_differential: true,
            ..OracleOptions::default()
        };
        for i in 0..25 {
            let s = CaseSpec::generate(&mut Rng::stream(0xcac4e, i));
            let e = evaluate_with(&s, opts);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
        }
    }

    #[test]
    fn interproc_differential_is_clean_on_random_specs() {
        let opts = OracleOptions {
            interproc_differential: true,
            ..OracleOptions::default()
        };
        for i in 0..25 {
            let s = CaseSpec::generate(&mut Rng::stream(0x1f7e2, i));
            let e = evaluate_with(&s, opts);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:?}", e.disagreements);
        }
    }

    #[test]
    fn finding_class_names_round_trip() {
        for c in [
            FindingClass::FalseTrap,
            FindingClass::MissedBug,
            FindingClass::EscapedCheck,
            FindingClass::VmError,
            FindingClass::OutputDivergence,
            FindingClass::Nondeterminism,
            FindingClass::DefenseDisagree,
            FindingClass::MalformedIr,
            FindingClass::ElisionDivergence,
            FindingClass::TierDivergence,
            FindingClass::CacheDivergence,
            FindingClass::InterprocDivergence,
            FindingClass::HarnessPanic,
        ] {
            assert_eq!(FindingClass::from_name(c.name()), Some(c));
        }
    }

    #[test]
    fn forensics_attach_to_detected_cases() {
        let s = spec(CaseKind::Bad, Variant::Direct, Site::Stack, true, Dir::Over);
        let text = forensic_text(&s);
        assert!(
            text.contains("bounds violation") || text.contains("poisoned"),
            "{text}"
        );
    }
}
