//! Case specifications: the generator's genotype.
//!
//! A [`CaseSpec`] is a small, serializable description of one test
//! program: where the target object lives, how the flawed access flows
//! to it (the Juliet vocabulary from `ifp-juliet`), and the surrounding
//! layout (fields before/after the target array, a decoy array-of-structs
//! tail, element sizes). The spec *is* the ground truth: [`CaseSpec::resolve`]
//! computes the planted access's byte range against the C layout rules,
//! so the oracle knows exactly what every defense should say without
//! trusting any of them.
//!
//! Program emission mirrors `ifp_juliet::gen` (good path first, bad path
//! second, completion marker, heap freed at exit) so the same VM harness
//! conventions apply.

use crate::json::Value;
use ifp_compiler::{FnBuilder, Operand, Program, ProgramBuilder, Reg, TypeId, TypeTable};
use ifp_juliet::{CaseKind, Cwe, Site, Variant};
use ifp_testutil::Rng;

/// Which edge of the target array the planted access crosses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Past the last element.
    Over,
    /// Before the first element.
    Under,
}

impl Dir {
    /// Stable serialization name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Dir::Over => "over",
            Dir::Under => "under",
        }
    }

    /// Parses a [`Dir::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Dir> {
        [Dir::Over, Dir::Under].into_iter().find(|d| d.name() == s)
    }
}

/// A sibling field of the target array: `count` elements of a
/// `elem_size`-byte integer type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSpec {
    /// Element size in bytes (1, 2, 4 or 8).
    pub elem_size: u8,
    /// Element count.
    pub count: u32,
}

/// Maximum object size the generator produces. Well under the
/// local-offset scheme's 1008-byte object cap and the layout-table entry
/// caps, so scheme selection is by *site*, not size.
pub const MAX_OBJECT: u64 = 512;

/// One generated case: layout genotype plus planted-bug parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// Flavor seed: decides filler positions and the MTE model's tag
    /// stream. Not a generation seed — two specs differing only here
    /// still describe the same layout.
    pub seed: u64,
    /// Where the target object lives.
    pub site: Site,
    /// How the access flows to the object.
    pub variant: Variant,
    /// Good (all accesses in bounds) or bad (planted violation).
    pub kind: CaseKind,
    /// Which edge the planted access crosses.
    pub dir: Dir,
    /// Whether the planted access is a read.
    pub is_read: bool,
    /// Whether the target array is a struct member (subobject) or a bare
    /// array (object-granularity only).
    pub wrap_struct: bool,
    /// Struct fields before the target array.
    pub pre: Vec<FieldSpec>,
    /// Target-array element size in bytes.
    pub elem_size: u8,
    /// Target-array length.
    pub len: u32,
    /// Struct fields after the target array.
    pub post: Vec<FieldSpec>,
    /// Length of a decoy trailing array-of-structs field (0 = absent).
    /// Exercises nested gep chains and layout-table depth on the good
    /// path without affecting the planted access.
    pub deco: u32,
    /// How many elements past the edge the planted access lands.
    pub oob: u32,
    /// Extra in-bounds stores to the target array before the accesses.
    pub filler: u32,
}

/// The spec's ground truth, computed from the C layout rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resolved {
    /// Total object size in bytes.
    pub object_size: u64,
    /// Byte offset of the target array within the object.
    pub arr_offset: u64,
    /// Element size in bytes.
    pub elem_size: u64,
    /// In-bounds index the good path accesses.
    pub good_idx: i64,
    /// Out-of-bounds index the bad path accesses.
    pub bad_idx: i64,
    /// Byte offset (within the object, possibly negative) where the
    /// planted access starts.
    pub bad_lo: i64,
    /// One past the planted access's last byte offset.
    pub bad_hi: i64,
    /// Whether the planted access leaves the object entirely (false =
    /// intra-object: it lands in a sibling field or padding).
    pub escapes: bool,
    /// The error class the planted access realizes.
    pub cwe: Cwe,
}

fn int_ty(types: &mut TypeTable, size: u8) -> TypeId {
    match size {
        1 => types.int8(),
        2 => types.int16(),
        4 => types.int32(),
        _ => types.int64(),
    }
}

/// The realized types of one spec, shared by layout resolution and
/// program emission so they can never disagree.
struct Realized {
    elem_t: TypeId,
    arr_t: TypeId,
    /// The root type: the wrapping struct, or the bare array.
    root_t: TypeId,
    /// Field index of the target array within the root struct.
    target_field: u32,
    /// Field index of the decoy field, when present.
    deco_field: Option<u32>,
    deco_arr_t: Option<TypeId>,
    deco_elem_t: Option<TypeId>,
}

impl CaseSpec {
    fn realize(&self, types: &mut TypeTable) -> Realized {
        let elem_t = int_ty(types, self.elem_size);
        let arr_t = types.array(elem_t, self.len);
        if !self.wrap_struct {
            return Realized {
                elem_t,
                arr_t,
                root_t: arr_t,
                target_field: 0,
                deco_field: None,
                deco_arr_t: None,
                deco_elem_t: None,
            };
        }
        let mut named: Vec<(String, TypeId)> = Vec::new();
        for (i, f) in self.pre.iter().enumerate() {
            let ft = int_ty(types, f.elem_size);
            let at = types.array(ft, f.count);
            named.push((format!("p{i}"), at));
        }
        let target_field = named.len() as u32;
        named.push(("t".into(), arr_t));
        for (i, f) in self.post.iter().enumerate() {
            let ft = int_ty(types, f.elem_size);
            let at = types.array(ft, f.count);
            named.push((format!("q{i}"), at));
        }
        let (deco_field, deco_arr_t, deco_elem_t) = if self.deco > 0 {
            let i32t = types.int32();
            let i64t = types.int64();
            let pair = types.struct_type("Deco", &[("a", i32t), ("b", i64t)]);
            let at = types.array(pair, self.deco);
            let idx = named.len() as u32;
            named.push(("d".into(), at));
            (Some(idx), Some(at), Some(pair))
        } else {
            (None, None, None)
        };
        let refs: Vec<(&str, TypeId)> = named.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let root_t = types.struct_type("Obj", &refs);
        Realized {
            elem_t,
            arr_t,
            root_t,
            target_field,
            deco_field,
            deco_arr_t,
            deco_elem_t,
        }
    }

    /// Computes the spec's ground truth against the C layout rules.
    #[must_use]
    pub fn resolve(&self) -> Resolved {
        let mut types = TypeTable::new();
        let r = self.realize(&mut types);
        let object_size = u64::from(types.size_of(r.root_t));
        let arr_offset = if self.wrap_struct {
            u64::from(types.field(r.root_t, r.target_field).offset)
        } else {
            0
        };
        let es = u64::from(self.elem_size);
        let (good_idx, bad_idx) = match self.dir {
            Dir::Over => (
                i64::from(self.len) - 1,
                i64::from(self.len) - 1 + i64::from(self.oob),
            ),
            Dir::Under => (0, -i64::from(self.oob)),
        };
        let bad_lo = arr_offset as i64 + bad_idx * es as i64;
        let bad_hi = bad_lo + es as i64;
        let escapes = bad_lo < 0 || bad_hi > object_size as i64;
        let cwe = match (escapes, self.dir, self.is_read) {
            (false, _, false) => Cwe::IntraObjectWrite,
            (false, _, true) => Cwe::IntraObjectRead,
            (true, Dir::Over, false) => Cwe::OverflowWrite,
            (true, Dir::Over, true) => Cwe::Overread,
            (true, Dir::Under, false) => Cwe::Underwrite,
            (true, Dir::Under, true) => Cwe::Underread,
        };
        Resolved {
            object_size,
            arr_offset,
            elem_size: es,
            good_idx,
            bad_idx,
            bad_lo,
            bad_hi,
            escapes,
            cwe,
        }
    }

    /// Normalizes the spec into the generator's supported envelope.
    /// Idempotent; both [`CaseSpec::generate`] and the mutation engine
    /// funnel through it, so every spec the oracle sees satisfies the
    /// constraints the detection model is sound under.
    pub fn sanitize(&mut self) {
        fn fix_size(s: u8) -> u8 {
            match s {
                1 | 2 | 4 | 8 => s,
                _ => 4,
            }
        }
        self.elem_size = fix_size(self.elem_size);
        self.len = self.len.clamp(1, 16);
        self.oob = self.oob.clamp(1, 3);
        self.filler = self.filler.min(8);
        self.deco = self.deco.min(4);
        self.pre.truncate(3);
        self.post.truncate(3);
        for f in self.pre.iter_mut().chain(self.post.iter_mut()) {
            f.elem_size = fix_size(f.elem_size);
            f.count = f.count.clamp(1, 8);
        }
        if !self.wrap_struct {
            self.pre.clear();
            self.post.clear();
            self.deco = 0;
        }
        // Keep the object comfortably inside the local-offset scheme.
        while self.resolve().object_size > MAX_OBJECT {
            if self.post.pop().is_some() {
            } else if self.deco > 0 {
                self.deco = 0;
            } else if self.pre.pop().is_some() {
            } else if self.len > 1 {
                self.len /= 2;
            } else {
                self.elem_size = 1;
            }
        }
        // A loaded-flow *intra-object* bug is only detectable when the
        // pointer's metadata scheme carries subobject index bits: global
        // objects use the global-table scheme, which has none — promote
        // recovers object bounds only, and the miss would be by design,
        // not a finding. Keep that cell out of the generator's space.
        if self.variant == Variant::LoadedFlow && self.site == Site::Global {
            let r = self.resolve();
            if !r.escapes {
                self.site = Site::Stack;
            }
        }
    }

    /// Draws a fresh spec from `rng` (already sanitized).
    #[must_use]
    pub fn generate(rng: &mut Rng) -> CaseSpec {
        let sizes = [1u8, 2, 4, 8];
        let field = |r: &mut Rng| FieldSpec {
            elem_size: *r.choose(&sizes),
            count: r.range_u32(1, 9),
        };
        let mut spec = CaseSpec {
            seed: rng.u64(),
            site: *rng.choose(&Site::ALL),
            variant: *rng.choose(&Variant::ALL),
            kind: if rng.bool() {
                CaseKind::Bad
            } else {
                CaseKind::Good
            },
            dir: if rng.bool() { Dir::Over } else { Dir::Under },
            is_read: rng.bool(),
            wrap_struct: rng.bool(),
            pre: rng.vec(0, 4, field),
            elem_size: *rng.choose(&sizes),
            len: rng.range_u32(1, 17),
            post: rng.vec(0, 4, field),
            deco: rng.range_u32(0, 5),
            oob: rng.range_u32(1, 4),
            filler: rng.range_u32(0, 9),
        };
        spec.sanitize();
        spec
    }

    /// Builds the spec's program. Mirrors the Juliet generator's
    /// conventions: initialize, good access, (bad access,) completion
    /// marker, free.
    ///
    /// # Panics
    ///
    /// Panics when the spec violates builder invariants — sanitized
    /// specs never do.
    #[must_use]
    pub fn build_program(&self) -> Program {
        let r = self.resolve();
        let mut pb = ProgramBuilder::new();
        let realized = self.realize(&mut pb.types);
        let vp = pb.types.void_ptr();
        let Realized {
            elem_t,
            arr_t,
            root_t,
            target_field,
            deco_field,
            deco_arr_t,
            deco_elem_t,
        } = realized;

        let data_g = (self.site == Site::Global).then(|| pb.global("g_data", root_t));
        let cell_g = (self.variant == Variant::LoadedFlow).then(|| pb.global("g_ptr", vp));

        // Flow helpers (same shapes as ifp-juliet's).
        if self.variant == Variant::CallFlow {
            let mut h = pb.func("access_helper", 2);
            let p = h.param(0);
            let at = h.param(1);
            let cell = h.index_addr(p, elem_t, at);
            if self.is_read {
                let v = h.load(cell, elem_t);
                h.print_int(v);
            } else {
                h.store(cell, 7i64, elem_t);
            }
            h.ret(None);
            pb.finish_func(h);
        }
        if let Some(cell_g) = cell_g {
            let mut h = pb.func("flow_helper", 1);
            let at = h.param(0);
            let gp = h.addr_of_global(cell_g);
            let p = h.load(gp, vp); // the promote path
            let cell = h.index_addr(p, elem_t, at);
            if self.is_read {
                let v = h.load(cell, elem_t);
                h.print_int(v);
            } else {
                h.store(cell, 7i64, elem_t);
            }
            h.ret(None);
            pb.finish_func(h);
        }

        let mut m = pb.func("main", 0);
        // The object, and the pointer to the target array within it.
        let obj = match self.site {
            Site::Stack => m.alloca(root_t),
            Site::Global => m.addr_of_global(data_g.expect("global site")),
            Site::Heap => {
                if self.wrap_struct {
                    m.malloc(root_t)
                } else {
                    m.malloc_n(elem_t, i64::from(self.len))
                }
            }
        };
        let (tp, base_ty) = if self.wrap_struct {
            (m.field_addr(obj, root_t, target_field), arr_t)
        } else if self.site == Site::Heap {
            (obj, elem_t)
        } else {
            (obj, arr_t)
        };

        // Initialize sibling fields (in-bounds, statically narrowed).
        for (i, f) in self.pre.iter().enumerate() {
            let fa = m.field_addr(obj, root_t, i as u32);
            let ft = int_ty(&mut pb.types, f.elem_size);
            for j in 0..f.count {
                let cell = m.index_addr(fa, ft, i64::from(j));
                m.store(cell, i64::from(j), ft);
            }
        }
        for (i, f) in self.post.iter().enumerate() {
            let fa = m.field_addr(obj, root_t, target_field + 1 + i as u32);
            let ft = int_ty(&mut pb.types, f.elem_size);
            for j in 0..f.count {
                let cell = m.index_addr(fa, ft, i64::from(j));
                m.store(cell, i64::from(j), ft);
            }
        }
        // Decoy array-of-structs: nested gep chain, all in bounds.
        if let (Some(df), Some(dat), Some(det)) = (deco_field, deco_arr_t, deco_elem_t) {
            let i32t = pb.types.int32();
            let fa = m.field_addr(obj, root_t, df);
            for j in 0..self.deco {
                let ea = m.index_addr(fa, dat, i64::from(j));
                let fd = m.field_addr(ea, det, 0);
                m.store(fd, i64::from(j), i32t);
            }
        }
        // Initialize the target array with a counted loop.
        m.for_loop(0i64, i64::from(self.len), |f, i| {
            let cell = f.index_addr(tp, base_ty, i);
            f.store(cell, i, elem_t);
        });
        // Filler: extra in-bounds stores at seed-derived positions.
        for i in 0..self.filler {
            let k = (self.seed.rotate_left(i * 8 + 1) % u64::from(self.len)) as i64;
            let cell = m.index_addr(tp, base_ty, k);
            m.store(cell, k + 1, elem_t);
        }

        // The access, routed per variant (juliet's emit_access shapes).
        let emit = |m: &mut FnBuilder, types: &mut TypeTable, idx: i64| {
            let do_access = |m: &mut FnBuilder, at: Reg| {
                let cell = m.index_addr(tp, base_ty, at);
                if self.is_read {
                    let v = m.load(cell, elem_t);
                    m.print_int(v);
                } else {
                    m.store(cell, 7i64, elem_t);
                }
            };
            match self.variant {
                Variant::Direct => {
                    let at = m.mov(idx);
                    do_access(m, at);
                }
                Variant::Loop => {
                    if idx >= 0 {
                        m.for_loop(0i64, idx + 1, |m, i| do_access(m, i));
                    } else {
                        let i = m.mov(i64::from(self.len) - 1);
                        m.count_down_loop(i, idx, |m, i| do_access(m, i));
                    }
                }
                Variant::PtrArith => {
                    let mid_idx = i64::from(self.len) / 2;
                    let mid = m.index_addr(tp, base_ty, mid_idx);
                    let k = m.mov(idx - mid_idx);
                    let cell = m.index_addr(mid, elem_t, k);
                    if self.is_read {
                        let v = m.load(cell, elem_t);
                        m.print_int(v);
                    } else {
                        m.store(cell, 7i64, elem_t);
                    }
                }
                Variant::CallFlow => {
                    let at = m.mov(idx);
                    m.call_void("access_helper", vec![Operand::Reg(tp), Operand::Reg(at)]);
                }
                Variant::LoadedFlow => {
                    let vp = types.void_ptr();
                    let gp = m.addr_of_global(cell_g.expect("loaded flow"));
                    m.store(gp, tp, vp);
                    let at = m.mov(idx);
                    m.call_void("flow_helper", vec![Operand::Reg(at)]);
                }
            }
        };
        emit(&mut m, &mut pb.types, r.good_idx);
        if self.kind == CaseKind::Bad {
            emit(&mut m, &mut pb.types, r.bad_idx);
        }
        m.print_int(1i64); // completion marker
        if self.site == Site::Heap {
            m.free(obj);
        }
        m.ret(Some(Operand::Imm(0)));
        pb.finish_func(m);
        pb.build()
    }

    /// Serializes into the corpus JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let fields = |fs: &[FieldSpec]| {
            Value::Arr(
                fs.iter()
                    .map(|f| {
                        Value::Arr(vec![
                            Value::Num(i64::from(f.elem_size)),
                            Value::Num(i64::from(f.count)),
                        ])
                    })
                    .collect(),
            )
        };
        Value::Obj(vec![
            ("seed".into(), Value::Str(format!("{:#x}", self.seed))),
            ("site".into(), Value::Str(self.site.name().into())),
            ("variant".into(), Value::Str(self.variant.name().into())),
            ("kind".into(), Value::Str(self.kind.name().into())),
            ("dir".into(), Value::Str(self.dir.name().into())),
            ("is_read".into(), Value::Bool(self.is_read)),
            ("wrap_struct".into(), Value::Bool(self.wrap_struct)),
            ("pre".into(), fields(&self.pre)),
            ("elem_size".into(), Value::Num(i64::from(self.elem_size))),
            ("len".into(), Value::Num(i64::from(self.len))),
            ("post".into(), fields(&self.post)),
            ("deco".into(), Value::Num(i64::from(self.deco))),
            ("oob".into(), Value::Num(i64::from(self.oob))),
            ("filler".into(), Value::Num(i64::from(self.filler))),
        ])
    }

    /// Deserializes from the corpus JSON shape.
    ///
    /// # Errors
    ///
    /// Reports the first missing or ill-typed key.
    pub fn from_json(v: &Value) -> Result<CaseSpec, String> {
        let s = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing string `{k}`"))
        };
        let n = |k: &str| {
            v.get(k)
                .and_then(Value::as_i64)
                .ok_or_else(|| format!("missing number `{k}`"))
        };
        let b = |k: &str| {
            v.get(k)
                .and_then(Value::as_bool)
                .ok_or_else(|| format!("missing bool `{k}`"))
        };
        let fields = |k: &str| -> Result<Vec<FieldSpec>, String> {
            v.get(k)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("missing array `{k}`"))?
                .iter()
                .map(|f| {
                    let pair = f.as_arr().ok_or("field is not a pair")?;
                    match pair {
                        [a, c] => Ok(FieldSpec {
                            elem_size: a.as_i64().ok_or("bad field size")? as u8,
                            count: c.as_i64().ok_or("bad field count")? as u32,
                        }),
                        _ => Err("field is not a pair".into()),
                    }
                })
                .collect()
        };
        let seed_text = s("seed")?;
        let seed = parse_seed(seed_text).ok_or_else(|| format!("bad seed `{seed_text}`"))?;
        let mut spec = CaseSpec {
            seed,
            site: Site::from_name(s("site")?).ok_or("bad site")?,
            variant: Variant::from_name(s("variant")?).ok_or("bad variant")?,
            kind: CaseKind::from_name(s("kind")?).ok_or("bad kind")?,
            dir: Dir::from_name(s("dir")?).ok_or("bad dir")?,
            is_read: b("is_read")?,
            wrap_struct: b("wrap_struct")?,
            pre: fields("pre")?,
            elem_size: n("elem_size")? as u8,
            len: n("len")? as u32,
            post: fields("post")?,
            deco: n("deco")? as u32,
            oob: n("oob")? as u32,
            filler: n("filler")? as u32,
        };
        spec.sanitize();
        Ok(spec)
    }
}

/// Parses a seed in decimal or `0x` hex.
#[must_use]
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> CaseSpec {
        CaseSpec {
            seed: 1,
            site: Site::Stack,
            variant: Variant::Direct,
            kind: CaseKind::Bad,
            dir: Dir::Over,
            is_read: false,
            wrap_struct: true,
            pre: vec![FieldSpec {
                elem_size: 4,
                count: 4,
            }],
            elem_size: 4,
            len: 4,
            post: vec![FieldSpec {
                elem_size: 4,
                count: 4,
            }],
            deco: 0,
            oob: 1,
            filler: 0,
        }
    }

    #[test]
    fn resolve_classifies_intra_vs_escape() {
        let spec = base_spec();
        let r = spec.resolve();
        // Overflow by one element from the middle array lands in `q0`.
        assert_eq!(r.arr_offset, 16);
        assert_eq!(r.object_size, 48);
        assert!(!r.escapes);
        assert_eq!(r.cwe, Cwe::IntraObjectWrite);

        let mut bare = base_spec();
        bare.wrap_struct = false;
        bare.sanitize();
        let r = bare.resolve();
        assert!(r.escapes, "bare arrays have nothing to land in");
        assert_eq!(r.cwe, Cwe::OverflowWrite);

        let mut under = base_spec();
        under.dir = Dir::Under;
        under.oob = 3;
        let r = under.resolve();
        // 3 elements * 4 bytes below offset 16 is offset 4: still inside.
        assert!(!r.escapes);
        assert_eq!(r.bad_lo, 4);
    }

    #[test]
    fn sanitize_is_idempotent_and_bounds_size() {
        let mut rng = Rng::new(42);
        for _ in 0..500 {
            let spec = CaseSpec::generate(&mut rng);
            let mut again = spec.clone();
            again.sanitize();
            assert_eq!(spec, again, "sanitize must be idempotent");
            assert!(spec.resolve().object_size <= MAX_OBJECT);
            if spec.variant == Variant::LoadedFlow && !spec.resolve().escapes {
                assert_ne!(spec.site, Site::Global, "undetectable cell generated");
            }
        }
    }

    #[test]
    fn programs_validate() {
        let mut rng = Rng::new(7);
        for _ in 0..200 {
            let spec = CaseSpec::generate(&mut rng);
            let program = spec.build_program();
            assert!(program.validate().is_ok(), "{spec:?}");
        }
    }

    #[test]
    fn json_round_trips() {
        let mut rng = Rng::new(11);
        for _ in 0..100 {
            let spec = CaseSpec::generate(&mut rng);
            let text = spec.to_json().to_string();
            let back = CaseSpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(spec, back, "{text}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<CaseSpec> = (0..32)
            .map(|i| CaseSpec::generate(&mut Rng::stream(9, i)))
            .collect();
        let b: Vec<CaseSpec> = (0..32)
            .map(|i| CaseSpec::generate(&mut Rng::stream(9, i)))
            .collect();
        assert_eq!(a, b);
        // And the emitted programs are structurally identical.
        for spec in &a {
            assert_eq!(
                format!("{:?}", spec.build_program()),
                format!("{:?}", spec.build_program())
            );
        }
    }
}
