//! The mutation engine: small structured edits to a [`CaseSpec`].
//!
//! Mutations perturb one dimension at a time — grow/shrink the target
//! array or the out-of-bounds distance, swap the site (and with it the
//! metadata scheme), reroute the data flow, or reshape the surrounding
//! layout — then re-sanitize, so every mutant stays inside the envelope
//! the oracle's expectations are sound under.

use crate::spec::{CaseSpec, Dir, FieldSpec};
use ifp_juliet::{CaseKind, Site, Variant};
use ifp_testutil::Rng;

fn mutate_once(spec: &mut CaseSpec, rng: &mut Rng) {
    match rng.range_u32(0, 12) {
        0 => spec.len = rng.range_u32(1, 17),
        1 => spec.elem_size = *rng.choose(&[1u8, 2, 4, 8]),
        2 => spec.oob = rng.range_u32(1, 4),
        3 => spec.site = *rng.choose(&Site::ALL),
        4 => spec.variant = *rng.choose(&Variant::ALL),
        5 => spec.dir = if rng.bool() { Dir::Over } else { Dir::Under },
        6 => spec.is_read = !spec.is_read,
        7 => spec.wrap_struct = !spec.wrap_struct,
        8 => {
            let f = FieldSpec {
                elem_size: *rng.choose(&[1u8, 2, 4, 8]),
                count: rng.range_u32(1, 9),
            };
            if rng.bool() {
                spec.pre.push(f);
            } else {
                spec.post.push(f);
            }
        }
        9 => {
            if rng.bool() {
                spec.pre.pop();
            } else {
                spec.post.pop();
            }
        }
        10 => spec.deco = rng.range_u32(0, 5),
        11 => spec.filler = rng.range_u32(0, 9),
        _ => unreachable!(),
    }
}

/// Produces a mutant of `spec`: one to three structured edits followed
/// by sanitization. The mutant keeps the parent's kind with probability
/// ~3/4 (flipping good/bad is its own edit).
#[must_use]
pub fn mutate(spec: &CaseSpec, rng: &mut Rng) -> CaseSpec {
    let mut out = spec.clone();
    out.seed = rng.u64();
    let edits = rng.range_u32(1, 4);
    for _ in 0..edits {
        mutate_once(&mut out, rng);
    }
    if rng.range_u32(0, 4) == 0 {
        out.kind = match out.kind {
            CaseKind::Good => CaseKind::Bad,
            CaseKind::Bad => CaseKind::Good,
        };
    }
    out.sanitize();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_stay_sanitized_and_vary() {
        let mut rng = Rng::new(77);
        let parent = CaseSpec::generate(&mut rng);
        let mut distinct = 0;
        for _ in 0..100 {
            let child = mutate(&parent, &mut rng);
            let mut re = child.clone();
            re.sanitize();
            assert_eq!(child, re, "mutant left the sanitized envelope");
            if child != parent {
                distinct += 1;
            }
        }
        assert!(distinct > 80, "mutations barely change anything");
    }

    #[test]
    fn mutation_is_deterministic() {
        let parent = CaseSpec::generate(&mut Rng::new(5));
        let a = mutate(&parent, &mut Rng::new(9));
        let b = mutate(&parent, &mut Rng::new(9));
        assert_eq!(a, b);
    }
}
