//! The campaign runner: a worker pool over a shared iteration counter.
//!
//! Work distribution is a single `AtomicU64` ticket counter; each ticket
//! `i` derives its RNG as `Rng::stream(campaign_seed, i)`, so the case a
//! ticket produces is a pure function of `(seed, i)` — which worker ran
//! it, and how many workers there are, cannot change a single generated
//! byte. Findings carry their ticket number and are sorted by it after
//! the pool joins, so reports and corpus files are byte-identical across
//! runs and across worker counts; only wall-clock changes.
//!
//! Shrinking and forensic capture run on the campaign thread after the
//! pool joins: findings are rare, and keeping the expensive per-finding
//! work single-threaded keeps the workers' hot loop allocation-light.

use crate::corpus::{write_corpus, Finding};
use crate::mutate::mutate;
use crate::oracle::{evaluate_with, forensic_text, Disagreement, FindingClass, OracleOptions};
use crate::shrink::shrink_with;
use crate::spec::CaseSpec;
use ifp_juliet::{CaseKind, Site, Variant, ALL_CWES};
use ifp_testutil::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How tickets choose the spec they run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Every ticket draws one spec from its own stream — uniform over
    /// the generator's distribution.
    #[default]
    Uniform,
    /// Inverse cell-frequency weighting: each bad-case ticket draws a
    /// small candidate set and keeps the one whose coverage cells have
    /// been hit least so far, steering the campaign toward the
    /// thin corners of the scheme×site×CWE×variant matrix. Good cases
    /// pass through unweighted, so the good/bad mix is unchanged.
    /// Selection happens sequentially before the worker pool starts, so
    /// results remain a pure function of `(seed, iterations)`.
    CoverageGuided,
}

impl Schedule {
    /// Stable CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Uniform => "uniform",
            Schedule::CoverageGuided => "coverage",
        }
    }

    /// Parses a [`Schedule::name`] string back.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Schedule> {
        [Schedule::Uniform, Schedule::CoverageGuided]
            .into_iter()
            .find(|x| x.name() == s)
    }
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The campaign seed: the sole source of randomness.
    pub seed: u64,
    /// Number of iterations (cases) to run.
    pub iterations: u64,
    /// Worker threads.
    pub workers: usize,
    /// Where to persist minimized findings; `None` keeps them in memory
    /// only.
    pub corpus_dir: Option<PathBuf>,
    /// Ticket scheduling strategy.
    pub schedule: Schedule,
    /// Add the check-elision differential legs to every oracle run: each
    /// instrumented mode reruns with `elide_checks` and any verdict or
    /// output change is an `elision_divergence` finding.
    pub elide_checks: bool,
    /// Add the execution-tier differential legs to every oracle run:
    /// each instrumented mode reruns on the jit tier and any verdict,
    /// output, or modeled-statistic change is a `tier_divergence`
    /// finding.
    pub tier_checks: bool,
    /// Add the plan-cache differential legs to every oracle run: each
    /// instrumented mode (interpreter and jit tiers) reruns twice
    /// through a deliberately capacity-poisoned artifact cache and any
    /// verdict, output, or modeled-statistic change is a
    /// `cache_divergence` finding.
    pub plan_cache_checks: bool,
    /// Add the combined inter-procedural differential legs to every
    /// oracle run: each instrumented mode reruns with the
    /// summary-informed elision plan on both execution tiers, fresh and
    /// through an artifact cache, and any verdict, output, or
    /// modeled-statistic change is an `interproc_divergence` finding.
    pub interproc_checks: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0,
            iterations: 1000,
            workers: 1,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: false,
            tier_checks: false,
            plan_cache_checks: false,
            interproc_checks: false,
        }
    }
}

/// What a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// The configuration that ran.
    pub config: CampaignConfig,
    /// Wall-clock time of the worker-pool phase.
    pub elapsed: Duration,
    /// Minimized findings, in iteration order.
    pub findings: Vec<Finding>,
    /// Hit counts per scheme×site×CWE×variant cell (bad cases only).
    pub coverage: BTreeMap<String, u64>,
    /// Modeled instructions executed by the worker-pool phase, summed
    /// over every oracle run (host throughput = this / `elapsed`).
    pub modeled_instrs: u64,
    /// Number of cells the generator can reach.
    pub total_cells: usize,
    /// Corpus files written (empty without a corpus dir or findings).
    pub corpus_paths: Vec<PathBuf>,
}

/// The metadata schemes a site's objects are served by, per allocator
/// matrix: stack objects are small enough for local-offset, heap objects
/// run under both allocators, globals sit in the global table.
fn schemes_for(site: Site) -> &'static [&'static str] {
    match site {
        Site::Stack => &["local-offset"],
        Site::Heap => &["local-offset", "subheap"],
        Site::Global => &["global-table"],
    }
}

fn cell(scheme: &str, site: Site, cwe: ifp_juliet::Cwe, variant: Variant) -> String {
    format!(
        "{scheme}\u{d7}{}\u{d7}{}\u{d7}{}",
        site.name(),
        cwe.name(),
        variant.name()
    )
}

/// The coverage cells a bad spec exercises.
fn cells_of(spec: &CaseSpec) -> Vec<String> {
    let cwe = spec.resolve().cwe;
    schemes_for(spec.site)
        .iter()
        .map(|scheme| cell(scheme, spec.site, cwe, spec.variant))
        .collect()
}

/// Every cell the generator can reach. The one excluded corner is
/// intra-object bugs on global loaded flows: the global-table scheme has
/// no subobject index bits, so the generator never plants them (see
/// `CaseSpec::sanitize`).
#[must_use]
pub fn reachable_cells() -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for site in Site::ALL {
        for scheme in schemes_for(site) {
            for cwe in ALL_CWES {
                for variant in Variant::ALL {
                    let intra = matches!(
                        cwe,
                        ifp_juliet::Cwe::IntraObjectWrite | ifp_juliet::Cwe::IntraObjectRead
                    );
                    if intra && site == Site::Global && variant == Variant::LoadedFlow {
                        continue;
                    }
                    out.insert(cell(scheme, site, cwe, variant));
                }
            }
        }
    }
    out
}

/// The spec ticket `i` of campaign `seed` produces — a pure function, so
/// replaying a ticket needs no campaign state. Even tickets generate
/// fresh specs; odd tickets generate a parent and mutate it.
#[must_use]
pub fn spec_for_ticket(seed: u64, i: u64) -> CaseSpec {
    let mut rng = Rng::stream(seed, i);
    if i.is_multiple_of(2) {
        CaseSpec::generate(&mut rng)
    } else {
        let parent = CaseSpec::generate(&mut rng);
        mutate(&parent, &mut rng)
    }
}

/// Candidate draws per bad-case ticket under the coverage-guided
/// schedule.
const CANDIDATES: u64 = 4;

/// Stream salt separating coverage-guided candidate streams from the
/// uniform ticket streams (a ticket's candidate `k` must not replay
/// another campaign's ticket `i * CANDIDATES + k`).
const CG_SALT: u64 = 0x5eed_c0de_0dd5_a17e;

/// The spec sequence a coverage-guided campaign runs, chosen
/// sequentially: ticket `i` draws up to [`CANDIDATES`] specs; a good
/// first draw passes through unchanged (preserving the generator's
/// good/bad mix), while a bad first draw competes against the remaining
/// bad candidates on the sum of its cells' hit counts so far — the
/// least-covered candidate wins (inverse cell-frequency weighting).
/// Everything is a pure function of `(seed, iterations)`: worker count
/// cannot influence a single chosen spec.
#[must_use]
pub fn coverage_guided_specs(seed: u64, iterations: u64) -> Vec<CaseSpec> {
    let gen_candidate = |i: u64, k: u64| {
        let mut rng = Rng::stream(seed ^ CG_SALT, i * CANDIDATES + k);
        if i.is_multiple_of(2) {
            CaseSpec::generate(&mut rng)
        } else {
            let parent = CaseSpec::generate(&mut rng);
            mutate(&parent, &mut rng)
        }
    };
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut specs = Vec::with_capacity(usize::try_from(iterations).unwrap_or(0));
    for i in 0..iterations {
        let first = gen_candidate(i, 0);
        let chosen = if first.kind == CaseKind::Good {
            first
        } else {
            let score = |counts: &BTreeMap<String, u64>, s: &CaseSpec| -> u64 {
                cells_of(s)
                    .iter()
                    .map(|c| counts.get(c).copied().unwrap_or(0))
                    .sum()
            };
            let mut best = (score(&counts, &first), first);
            for k in 1..CANDIDATES {
                let cand = gen_candidate(i, k);
                if cand.kind != CaseKind::Bad {
                    continue;
                }
                let s = score(&counts, &cand);
                if s < best.0 {
                    best = (s, cand);
                }
            }
            best.1
        };
        for c in cells_of(&chosen) {
            *counts.entry(c).or_default() += 1;
        }
        specs.push(chosen);
    }
    specs
}

/// Runs a campaign to completion.
///
/// # Panics
///
/// Panics if a worker thread itself dies outside the per-case guard
/// (a harness bug, not a finding).
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let next = AtomicU64::new(0);
    let opts = OracleOptions {
        elide_differential: config.elide_checks,
        tier_differential: config.tier_checks,
        plan_cache_differential: config.plan_cache_checks,
        interproc_differential: config.interproc_checks,
    };
    let raw_findings: Mutex<Vec<(u64, CaseSpec, Vec<Disagreement>)>> = Mutex::new(Vec::new());
    let workers = config.workers.max(1);
    // Coverage-guided selection is inherently sequential (each choice
    // depends on the running cell counts), so it happens up front; the
    // pool then executes the prebuilt sequence.
    let prebuilt: Option<Vec<CaseSpec>> = match config.schedule {
        Schedule::Uniform => None,
        Schedule::CoverageGuided => Some(coverage_guided_specs(config.seed, config.iterations)),
    };

    let started = std::time::Instant::now();
    let (coverage, modeled_instrs) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local_cov: BTreeMap<String, u64> = BTreeMap::new();
                    let mut local_instrs = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= config.iterations {
                            break;
                        }
                        let spec = match &prebuilt {
                            Some(specs) => specs[usize::try_from(i).expect("ticket fits")].clone(),
                            None => spec_for_ticket(config.seed, i),
                        };
                        if spec.kind == CaseKind::Bad {
                            for c in cells_of(&spec) {
                                *local_cov.entry(c).or_default() += 1;
                            }
                        }
                        let spec_for_eval = spec.clone();
                        match catch_unwind(AssertUnwindSafe(|| evaluate_with(&spec_for_eval, opts)))
                        {
                            Ok(eval) => {
                                local_instrs += eval.modeled_instrs;
                                if !eval.disagreements.is_empty() {
                                    raw_findings.lock().unwrap().push((
                                        i,
                                        spec,
                                        eval.disagreements,
                                    ));
                                }
                            }
                            Err(payload) => {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(ToString::to_string)
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic".into());
                                raw_findings.lock().unwrap().push((
                                    i,
                                    spec,
                                    vec![Disagreement {
                                        class: FindingClass::HarnessPanic,
                                        detail: msg,
                                    }],
                                ));
                            }
                        }
                    }
                    (local_cov, local_instrs)
                })
            })
            .collect();
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        let mut instrs = 0u64;
        for h in handles {
            let (cov, n) = h.join().expect("worker thread died");
            for (k, v) in cov {
                *merged.entry(k).or_default() += v;
            }
            instrs += n;
        }
        (merged, instrs)
    });
    let elapsed = started.elapsed();

    let mut raw = raw_findings.into_inner().unwrap();
    raw.sort_by_key(|(i, _, _)| *i);

    // Post-pool triage: shrink each finding to a minimal reproducer that
    // still shows at least one of the original disagreement classes,
    // then attach the forensic reconstruction.
    let findings: Vec<Finding> = raw
        .into_iter()
        .map(|(iteration, original, disagreements)| {
            let classes: BTreeSet<FindingClass> = disagreements.iter().map(|d| d.class).collect();
            let spec = shrink_with(&original, |cand| {
                let out = catch_unwind(AssertUnwindSafe(|| evaluate_with(cand, opts)));
                match out {
                    Ok(eval) => eval
                        .disagreements
                        .iter()
                        .any(|d| classes.contains(&d.class)),
                    Err(_) => classes.contains(&FindingClass::HarnessPanic),
                }
            });
            let forensics = forensic_text(&spec);
            Finding {
                iteration,
                campaign_seed: config.seed,
                disagreements,
                spec,
                original,
                forensics,
            }
        })
        .collect();

    let corpus_paths = match (&config.corpus_dir, findings.is_empty()) {
        (Some(dir), false) => write_corpus(dir, &findings).unwrap_or_else(|e| {
            eprintln!("ifp-fuzz: cannot write corpus to {}: {e}", dir.display());
            Vec::new()
        }),
        _ => Vec::new(),
    };

    CampaignReport {
        config: config.clone(),
        elapsed,
        findings,
        coverage,
        modeled_instrs,
        total_cells: reachable_cells().len(),
        corpus_paths,
    }
}

impl CampaignReport {
    /// Iterations per wall-clock second.
    #[must_use]
    pub fn iters_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.config.iterations as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Modeled instructions per wall-clock second — host simulator
    /// throughput as seen by the campaign.
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.modeled_instrs as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Findings tallied by class.
    #[must_use]
    pub fn findings_by_class(&self) -> BTreeMap<FindingClass, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            for d in &f.disagreements {
                *out.entry(d.class).or_insert(0) += 1;
            }
        }
        out
    }

    /// The summary table the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("ifp-fuzz campaign\n");
        s.push_str(&format!("  seed        {:#x}\n", self.config.seed));
        s.push_str(&format!("  iterations  {}\n", self.config.iterations));
        s.push_str(&format!("  workers     {}\n", self.config.workers.max(1)));
        s.push_str(&format!("  schedule    {}\n", self.config.schedule.name()));
        if self.config.elide_checks {
            s.push_str("  elision     differential on (wrapped + subheap rerun elided)\n");
        }
        if self.config.tier_checks {
            s.push_str("  exec tier   differential on (wrapped + subheap rerun on jit)\n");
        }
        if self.config.plan_cache_checks {
            s.push_str(
                "  plan cache  differential on (both tiers rerun through a poisoned cache)\n",
            );
        }
        if self.config.interproc_checks {
            s.push_str(
                "  interproc   differential on (elided plan rerun on both tiers through a cache)\n",
            );
        }
        s.push_str(&format!(
            "  elapsed     {:.2}s ({:.0} iters/sec)\n",
            self.elapsed.as_secs_f64(),
            self.iters_per_sec()
        ));
        s.push_str(&format!(
            "  throughput  {} modeled instrs ({:.2}M instrs/sec)\n",
            self.modeled_instrs,
            self.instrs_per_sec() / 1e6
        ));
        s.push_str(&format!(
            "  coverage    {}/{} scheme\u{d7}site\u{d7}CWE\u{d7}variant cells\n",
            self.coverage.len(),
            self.total_cells
        ));
        s.push_str(&format!("  findings    {}\n", self.findings.len()));
        let by_class = self.findings_by_class();
        if !by_class.is_empty() {
            s.push_str("\nfindings by class:\n");
            for (class, n) in &by_class {
                s.push_str(&format!("  {:<20} {n}\n", class.name()));
            }
        }
        for f in &self.findings {
            s.push_str(&format!(
                "\nfinding @ iteration {}: {}\n",
                f.iteration,
                f.disagreements
                    .iter()
                    .map(|d| d.detail.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
            s.push_str(&format!("  minimized: {:?}\n", f.spec));
            s.push_str(&format!("  forensics: {}\n", f.forensics));
        }
        if !self.corpus_paths.is_empty() {
            s.push_str(&format!(
                "\ncorpus: {} file(s) under {}\n",
                self.corpus_paths.len(),
                self.config
                    .corpus_dir
                    .as_deref()
                    .unwrap_or_else(|| std::path::Path::new("?"))
                    .display()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_cell_count_is_stable() {
        // 3 sites × their schemes × 6 CWEs × 5 variants, minus the two
        // excluded global loaded-flow intra cells.
        assert_eq!(reachable_cells().len(), (1 + 2 + 1) * 6 * 5 - 2);
    }

    #[test]
    fn tickets_are_pure_functions() {
        for i in [0u64, 1, 7, 100] {
            assert_eq!(spec_for_ticket(42, i), spec_for_ticket(42, i));
        }
        assert_ne!(spec_for_ticket(42, 0), spec_for_ticket(43, 0));
    }

    #[test]
    fn small_campaign_is_clean_and_covers_cells() {
        let report = run_campaign(&CampaignConfig {
            seed: 0x5eed,
            iterations: 60,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: false,
            tier_checks: false,
            plan_cache_checks: false,
            interproc_checks: false,
        });
        assert!(
            report.findings.is_empty(),
            "{:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        assert!(!report.coverage.is_empty());
        assert!(report.coverage.len() <= report.total_cells);
        // Every iteration runs the five-mode oracle, so the throughput
        // denominator cannot be empty.
        assert!(report.modeled_instrs > 0);
        let rendered = report.render();
        assert!(rendered.contains("iterations  60"), "{rendered}");
        assert!(rendered.contains("instrs/sec"), "{rendered}");
    }

    #[test]
    fn elide_differential_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig {
            seed: 0xe11d,
            iterations: 40,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: true,
            tier_checks: false,
            plan_cache_checks: false,
            interproc_checks: false,
        });
        assert!(
            report.findings.is_empty(),
            "{:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        assert!(report.render().contains("elision     differential on"));
    }

    #[test]
    fn tier_differential_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig {
            seed: 0x71e4,
            iterations: 40,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: false,
            tier_checks: true,
            plan_cache_checks: false,
            interproc_checks: false,
        });
        assert!(
            report.findings.is_empty(),
            "{:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        assert!(report.render().contains("exec tier   differential on"));
    }

    #[test]
    fn plan_cache_differential_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig {
            seed: 0xcac4e,
            iterations: 40,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: false,
            tier_checks: false,
            plan_cache_checks: true,
            interproc_checks: false,
        });
        assert!(
            report.findings.is_empty(),
            "{:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        assert!(report.render().contains("plan cache  differential on"));
    }

    #[test]
    fn interproc_differential_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig {
            seed: 0x1f7e2,
            iterations: 40,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::Uniform,
            elide_checks: false,
            tier_checks: false,
            plan_cache_checks: false,
            interproc_checks: true,
        });
        assert!(
            report.findings.is_empty(),
            "{:#?}",
            report
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        assert!(report.render().contains("interproc   differential on"));
    }

    #[test]
    fn coverage_guided_selection_is_a_pure_function_of_seed_and_iterations() {
        let a = coverage_guided_specs(0xc0f, 80);
        let b = coverage_guided_specs(0xc0f, 80);
        assert_eq!(a, b);
        // A longer run extends, never rewrites, the shorter sequence.
        let longer = coverage_guided_specs(0xc0f, 120);
        assert_eq!(&longer[..80], &a[..]);
    }

    #[test]
    fn coverage_guided_preserves_the_good_case_mix() {
        // Good tickets pass through unweighted: the schedule only picks
        // among bad candidates, so candidate 0's kind decides the mix.
        for (i, spec) in coverage_guided_specs(0x90d, 100).iter().enumerate() {
            let mut rng = Rng::stream(0x90d ^ CG_SALT, i as u64 * CANDIDATES);
            let first = if (i as u64).is_multiple_of(2) {
                CaseSpec::generate(&mut rng)
            } else {
                let parent = CaseSpec::generate(&mut rng);
                mutate(&parent, &mut rng)
            };
            assert_eq!(spec.kind, first.kind);
        }
    }

    #[test]
    fn coverage_guided_campaign_is_clean_and_spreads_coverage() {
        let base = CampaignConfig {
            seed: 0x5eed,
            iterations: 60,
            workers: 2,
            corpus_dir: None,
            schedule: Schedule::CoverageGuided,
            elide_checks: false,
            tier_checks: false,
            plan_cache_checks: false,
            interproc_checks: false,
        };
        let guided = run_campaign(&base);
        assert!(
            guided.findings.is_empty(),
            "{:#?}",
            guided
                .findings
                .iter()
                .map(|f| (&f.spec, &f.disagreements))
                .collect::<Vec<_>>()
        );
        // Worker-count invariance: same cells, same hit counts.
        let solo = run_campaign(&CampaignConfig {
            workers: 1,
            ..base.clone()
        });
        assert_eq!(guided.coverage, solo.coverage);
        // The point of the schedule: at equal iteration count it reaches
        // at least as many distinct cells as the uniform draw.
        let uniform = run_campaign(&CampaignConfig {
            schedule: Schedule::Uniform,
            workers: 2,
            ..base
        });
        assert!(
            guided.coverage.len() >= uniform.coverage.len(),
            "guided {} < uniform {}",
            guided.coverage.len(),
            uniform.coverage.len()
        );
        assert!(guided.render().contains("schedule    coverage"));
    }
}
