//! The cross-thread use-after-free campaign: seeded planted races and
//! benign lock-free workloads, judged against the reclamation trackers'
//! known ground truth.
//!
//! Each ticket derives its case from `Rng::stream(seed, i)` — the case
//! mix, the interleaving schedules, the payload sizes — so a campaign is
//! a pure function of `seed × iterations`, invariant under worker
//! count. Three case families:
//!
//! * **Planted** ([`ifp_concurrent::plant`]): one of the five
//!   cross-thread bug classes under one of the three reclamation
//!   policies. The buggy script must trap with exactly the expected
//!   kind and thread attribution; the benign twin must stay silent.
//! * **Workload**: a seeded Treiber-stack / MPMC-queue / level-hash
//!   script under a seeded interleaving — real CAS contention with
//!   frees on the hot path. Any violation is a false positive; the run
//!   must also complete (no fuel exhaustion) and reclaim everything it
//!   retires.
//! * **Replay** (every ticket): the case is run twice; outcomes must be
//!   bit-identical, fingerprint included.

use ifp_concurrent::{check_outcome, planted_case, run, ConcConfig, Plan, PlantClass, Schedule};
use ifp_temporal::reclaim::ReclaimPolicy;
use ifp_testutil::Rng;
use ifp_workloads::concurrent::{gen_script, ConcStructure};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One seeded concurrent case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConcCase {
    /// A pinned-race planted bug (or its benign twin).
    Planted {
        /// The bug class.
        class: PlantClass,
        /// True for the violation-free twin.
        benign: bool,
    },
    /// A benign seeded data-structure workload.
    Workload {
        /// Which structure the threads share.
        structure: ConcStructure,
        /// Logical thread count (2..=4).
        threads: usize,
        /// Ops per thread.
        ops: usize,
    },
}

/// A full concurrent fuzz spec: the case plus the policy and the seeds
/// that pin sizes/values and the interleaving.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcSpec {
    /// Case seed: payload sizes/values (planted) or the op script
    /// (workload).
    pub seed: u64,
    /// Interleaving seed for seeded-schedule cases.
    pub schedule_seed: u64,
    /// Which reclamation tracker guards the run.
    pub policy: ReclaimPolicy,
    /// The case itself.
    pub case: ConcCase,
}

impl ConcSpec {
    /// Draws a fresh spec from `rng`.
    #[must_use]
    pub fn generate(rng: &mut Rng) -> ConcSpec {
        let policy = *rng.choose(&ReclaimPolicy::ALL);
        let case = if rng.u64() % 3 < 2 {
            ConcCase::Planted {
                class: *rng.choose(&PlantClass::ALL),
                benign: rng.bool(),
            }
        } else {
            ConcCase::Workload {
                structure: *rng.choose(&ConcStructure::ALL),
                threads: 2 + (rng.u64() % 3) as usize,
                ops: 24 + (rng.u64() % 40) as usize,
            }
        };
        ConcSpec {
            seed: rng.u64(),
            schedule_seed: rng.u64(),
            policy,
            case,
        }
    }

    /// Coverage cell name: `policy×case`.
    #[must_use]
    pub fn cell(&self) -> String {
        let case = match &self.case {
            ConcCase::Planted { class, benign } => {
                format!(
                    "{}\u{d7}{}",
                    class.name(),
                    if *benign { "benign" } else { "buggy" }
                )
            }
            ConcCase::Workload { structure, .. } => format!("{}\u{d7}workload", structure.name()),
        };
        format!("{}\u{d7}{case}", self.policy.name())
    }

    fn config(&self) -> (ConcConfig, Option<ifp_concurrent::PlantedCase>) {
        match &self.case {
            ConcCase::Planted { class, benign } => {
                let case = planted_case(*class, *benign, &mut Rng::new(self.seed));
                let cfg = ConcConfig {
                    policy: self.policy,
                    plan: Plan::Raw(case.plan.clone()),
                    schedule: Schedule::Explicit(case.schedule.clone()),
                };
                (cfg, Some(case))
            }
            ConcCase::Workload {
                structure,
                threads,
                ops,
            } => (
                ConcConfig {
                    policy: self.policy,
                    plan: Plan::Structure(gen_script(
                        *structure,
                        *threads,
                        *ops,
                        &mut Rng::new(self.seed),
                    )),
                    schedule: Schedule::Seeded(self.schedule_seed),
                },
                None,
            ),
        }
    }

    /// Runs the spec and returns every deviation from ground truth.
    #[must_use]
    pub fn evaluate(&self) -> Vec<String> {
        let (cfg, planted) = self.config();
        let out = run(&cfg);
        let mut problems = Vec::new();
        if out.fuel_exhausted {
            problems.push(format!("fuel exhausted after {} steps", out.steps));
        }
        match planted {
            Some(case) => {
                if let Err(e) = check_outcome(&case, &out) {
                    problems.push(e);
                }
            }
            None => {
                if let Some(v) = out.violations.first() {
                    problems.push(format!("false positive on benign workload: {v}"));
                }
                if out.stats.retires != out.stats.reclaims {
                    problems.push(format!(
                        "reclamation leak: {} retired, {} reclaimed",
                        out.stats.retires, out.stats.reclaims
                    ));
                }
            }
        }
        let replay = run(&cfg);
        if replay != out {
            problems.push(format!(
                "nondeterministic outcome: fingerprint {:#x} vs {:#x}",
                out.fingerprint, replay.fingerprint
            ));
        }
        problems
    }
}

/// The spec ticket `i` of concurrent campaign `seed` produces — a pure
/// function of `(seed, i)`, worker-count invariant.
#[must_use]
pub fn conc_spec_for_ticket(seed: u64, i: u64) -> ConcSpec {
    ConcSpec::generate(&mut Rng::stream(seed, i))
}

/// Concurrent campaign configuration.
#[derive(Clone, Debug)]
pub struct ConcCampaignConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Tickets to run.
    pub iterations: u64,
    /// Worker threads (results identical for any count).
    pub workers: usize,
}

/// One concurrent-campaign finding.
#[derive(Clone, Debug)]
pub struct ConcFinding {
    /// The ticket that produced it.
    pub iteration: u64,
    /// The offending spec.
    pub spec: ConcSpec,
    /// Every deviation observed.
    pub problems: Vec<String>,
}

/// What a concurrent campaign produced.
#[derive(Debug)]
pub struct ConcCampaignReport {
    /// The configuration that ran.
    pub config: ConcCampaignConfig,
    /// Wall-clock time of the worker-pool phase.
    pub elapsed: Duration,
    /// Findings, in iteration order.
    pub findings: Vec<ConcFinding>,
    /// Hit counts per policy×case cell.
    pub coverage: BTreeMap<String, u64>,
    /// Number of cells the generator can reach.
    pub total_cells: usize,
}

/// Every coverage cell the generator can reach: 3 policies × (5 planted
/// classes × buggy/benign + 3 workload structures).
#[must_use]
pub fn reachable_conc_cells() -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for policy in ReclaimPolicy::ALL {
        for class in PlantClass::ALL {
            for benign in [false, true] {
                out.insert(
                    ConcSpec {
                        seed: 0,
                        schedule_seed: 0,
                        policy,
                        case: ConcCase::Planted { class, benign },
                    }
                    .cell(),
                );
            }
        }
        for structure in ConcStructure::ALL {
            out.insert(
                ConcSpec {
                    seed: 0,
                    schedule_seed: 0,
                    policy,
                    case: ConcCase::Workload {
                        structure,
                        threads: 2,
                        ops: 1,
                    },
                }
                .cell(),
            );
        }
    }
    out
}

/// Runs a concurrent campaign to completion.
///
/// # Panics
///
/// Panics if a worker thread dies (a harness bug, not a finding).
#[must_use]
pub fn run_conc_campaign(config: &ConcCampaignConfig) -> ConcCampaignReport {
    let next = AtomicU64::new(0);
    let raw: Mutex<Vec<ConcFinding>> = Mutex::new(Vec::new());
    let workers = config.workers.max(1);

    let started = std::time::Instant::now();
    let coverage = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local_cov: BTreeMap<String, u64> = BTreeMap::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= config.iterations {
                            break;
                        }
                        let spec = conc_spec_for_ticket(config.seed, i);
                        *local_cov.entry(spec.cell()).or_default() += 1;
                        let problems = spec.evaluate();
                        if !problems.is_empty() {
                            raw.lock().unwrap().push(ConcFinding {
                                iteration: i,
                                spec,
                                problems,
                            });
                        }
                    }
                    local_cov
                })
            })
            .collect();
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for h in handles {
            for (k, v) in h.join().expect("worker thread died") {
                *merged.entry(k).or_default() += v;
            }
        }
        merged
    });
    let elapsed = started.elapsed();

    let mut findings = raw.into_inner().unwrap();
    findings.sort_by_key(|f| f.iteration);

    ConcCampaignReport {
        config: config.clone(),
        elapsed,
        findings,
        coverage,
        total_cells: reachable_conc_cells().len(),
    }
}

impl ConcCampaignReport {
    /// The summary table the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("ifp-fuzz concurrent campaign\n");
        s.push_str(&format!("  seed        {:#x}\n", self.config.seed));
        s.push_str(&format!("  iterations  {}\n", self.config.iterations));
        s.push_str(&format!("  workers     {}\n", self.config.workers.max(1)));
        let secs = self.elapsed.as_secs_f64();
        let rate = if secs > 0.0 {
            self.config.iterations as f64 / secs
        } else {
            f64::INFINITY
        };
        s.push_str(&format!("  elapsed     {secs:.2}s ({rate:.0} iters/sec)\n"));
        s.push_str(&format!(
            "  coverage    {}/{} policy\u{d7}case cells\n",
            self.coverage.len(),
            self.total_cells
        ));
        s.push_str(&format!("  findings    {}\n", self.findings.len()));
        for f in &self.findings {
            s.push_str(&format!(
                "\nfinding @ iteration {}: {}\n  spec: {:?}\n",
                f.iteration,
                f.problems.join("; "),
                f.spec
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_conc_cell_count_is_stable() {
        // 3 policies × (5 classes × 2 variants + 3 workload structures).
        assert_eq!(reachable_conc_cells().len(), 3 * (5 * 2 + 3));
    }

    #[test]
    fn generation_is_deterministic() {
        for i in 0..64 {
            let a = conc_spec_for_ticket(0x77, i);
            let b = conc_spec_for_ticket(0x77, i);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn small_campaign_is_clean_and_worker_invariant() {
        let config = ConcCampaignConfig {
            seed: 0xc2,
            iterations: 48,
            workers: 3,
        };
        let report = run_conc_campaign(&config);
        assert!(report.findings.is_empty(), "{}", report.render());
        assert!(!report.coverage.is_empty());
        let solo = run_conc_campaign(&ConcCampaignConfig {
            workers: 1,
            ..config
        });
        assert_eq!(report.coverage, solo.coverage, "worker-count invariance");
        assert!(report.render().contains("iterations  48"));
    }
}
