//! The temporal bug planter: seed-derived programs with a planted
//! use-after-free, double free, realloc-stale-pointer bug — or none —
//! whose ground truth is known by construction, evaluated against an
//! *analytic* model of every temporal policy.
//!
//! The model encodes the documented lock-and-key semantics end to end:
//!
//! * **Quarantine** defers address reuse, so every stale access lands in
//!   a still-revoked region: use-after-free, double free and
//!   realloc-stale detection are all deterministic.
//! * **Key-check** catches every register-carried (direct) stale use —
//!   the stale stamp can never equal the live key — and every stale use
//!   of *unreused* memory (the revoked-region check). Its one documented
//!   blind spot: a pointer that round-trips through memory after the
//!   freed chunk was reallocated is re-stamped by `promote` with the
//!   *new* allocation's key, and the stale access passes.
//! * **Tag-cycle** inherits key-check's blind spot and adds the reuse
//!   window: with a 15-tag cycle, a direct stale use is missed exactly
//!   when `(dummies + 1) % 15 == 0` intervening allocations separate the
//!   stale key from the live key — the planted tag-wraparound.
//! * **Off** never raises a temporal trap; benign programs must complete
//!   with byte-identical output under every policy (zero false
//!   positives).
//!
//! Each spec also cross-checks the `ifp_baselines` temporal models
//! (ASan quarantine eviction, MTE tag agreement, SoftBound's guaranteed
//! miss), tying the analytic comparator table to the fuzzer's oracle.

use crate::oracle::{Disagreement, FindingClass};
use ifp_baselines::{temporal_row, Asan, Mte, SoftBound};
use ifp_compiler::{Operand, Program, ProgramBuilder, TypeId};
use ifp_hw::Trap;
use ifp_temporal::TemporalPolicy;
use ifp_testutil::Rng;
use ifp_trace::TemporalKind;
use ifp_vm::{run, AllocatorKind, Mode, VmConfig, VmError};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Instruction budget per run; generated programs are tiny.
const FUEL: u64 = 10_000_000;

/// The planted temporal bug class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalBug {
    /// Correct malloc/use/free/realloc code: must complete everywhere.
    Benign,
    /// Load through a stale pointer after free (memory not reallocated).
    UafRead,
    /// Store through a stale pointer after free.
    UafWrite,
    /// The same allocation freed twice.
    DoubleFree,
    /// Stale pointer used after its chunk was reallocated to a new
    /// live object — the address-reuse variant of use-after-free.
    ReallocStale,
}

impl TemporalBug {
    /// Every bug class, benign first.
    pub const ALL: [TemporalBug; 5] = [
        TemporalBug::Benign,
        TemporalBug::UafRead,
        TemporalBug::UafWrite,
        TemporalBug::DoubleFree,
        TemporalBug::ReallocStale,
    ];

    /// Stable name for coverage cells and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TemporalBug::Benign => "benign",
            TemporalBug::UafRead => "uaf-read",
            TemporalBug::UafWrite => "uaf-write",
            TemporalBug::DoubleFree => "double-free",
            TemporalBug::ReallocStale => "realloc-stale",
        }
    }
}

/// Which allocator metadata path serves the target object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TemporalPath {
    /// Wrapped allocator, small object (local-offset record).
    Wrapped,
    /// Subheap allocator, small object (pool slot).
    Subheap,
    /// Wrapped allocator, oversized object (global-table row).
    GlobalTable,
}

impl TemporalPath {
    /// Every path, in matrix order.
    pub const ALL: [TemporalPath; 3] = [
        TemporalPath::Wrapped,
        TemporalPath::Subheap,
        TemporalPath::GlobalTable,
    ];

    /// Stable name for coverage cells and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TemporalPath::Wrapped => "wrapped",
            TemporalPath::Subheap => "subheap",
            TemporalPath::GlobalTable => "global-table",
        }
    }

    fn mode(self) -> Mode {
        match self {
            TemporalPath::Wrapped | TemporalPath::GlobalTable => {
                Mode::instrumented(AllocatorKind::Wrapped)
            }
            TemporalPath::Subheap => Mode::instrumented(AllocatorKind::Subheap),
        }
    }

    /// The target object type: small structs ride the local-offset /
    /// subheap record, anything past 1008 bytes takes the global table.
    fn object_type(self, pb: &mut ProgramBuilder) -> TypeId {
        let i64t = pb.types.int64();
        match self {
            TemporalPath::Wrapped | TemporalPath::Subheap => {
                pb.types.struct_type("Node", &[("a", i64t), ("b", i64t)])
            }
            TemporalPath::GlobalTable => pb.types.array(i64t, 256), // 2048 B
        }
    }
}

/// How the stale pointer reaches its use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// The stale pointer stays in a register, stamp intact.
    Direct,
    /// The pointer round-trips through a global cell: the stale use
    /// loads it back, and `promote` re-derives metadata (and re-stamps).
    Loaded,
}

impl Flow {
    /// Stable name for coverage cells and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Flow::Direct => "direct",
            Flow::Loaded => "loaded",
        }
    }
}

/// One temporal case: the planted bug and the knobs that steer which
/// policies can see it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemporalSpec {
    /// Flavor seed — drives the MTE baseline model's tag stream only.
    pub seed: u64,
    /// The planted bug class.
    pub bug: TemporalBug,
    /// Allocator metadata path of the target object.
    pub path: TemporalPath,
    /// Register-carried or memory-round-trip stale pointer.
    pub flow: Flow,
    /// Intervening malloc+free pairs (of the target's own type) between
    /// the free and the stale use / refill: advances the key counter, so
    /// `dummies == 14` plants the tag-cycle wraparound (`15 % 15 == 0`).
    pub dummies: u8,
}

impl TemporalSpec {
    /// Normalizes the spec into the generator's envelope: dummy count
    /// inside one tag cycle, double frees always register-carried.
    pub fn sanitize(&mut self) {
        self.dummies %= 15;
        if self.bug == TemporalBug::DoubleFree {
            self.flow = Flow::Direct;
        }
    }

    /// Draws a fresh spec from `rng` (already sanitized). The dummy
    /// count is biased toward the boundary cases: none, and the full
    /// 14 that plants the tag-cycle wraparound.
    #[must_use]
    pub fn generate(rng: &mut Rng) -> TemporalSpec {
        let mut spec = TemporalSpec {
            seed: rng.u64(),
            bug: *rng.choose(&TemporalBug::ALL),
            path: *rng.choose(&TemporalPath::ALL),
            flow: if rng.bool() {
                Flow::Loaded
            } else {
                Flow::Direct
            },
            dummies: match rng.range_u32(0, 3) {
                0 => 0,
                1 => 14,
                _ => rng.range_u32(0, 15) as u8,
            },
        };
        spec.sanitize();
        spec
    }

    /// Builds the spec's program.
    ///
    /// Every program opens with a never-freed *ballast* allocation of
    /// the target type so the subheap block (and its metadata) stays
    /// mapped after the target is freed, keeping stale-use outcomes a
    /// function of the temporal policy rather than of page liveness.
    /// Dummies allocate the *target's own type*: under exact-size bins
    /// (wrapped) and LIFO slot reuse (subheap) each dummy cycles through
    /// the freed target chunk itself, so the refill always lands back on
    /// the target address with a key distance of exactly `dummies + 1`.
    /// (A smaller dummy class would instead steal and *split* the freed
    /// chunk under the libc allocator's first-larger-fit, leaving the
    /// refill on fresh memory and the reuse window never open.)
    #[must_use]
    pub fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let i64t = pb.types.int64();
        let vp = pb.types.void_ptr();
        let ty = self.path.object_type(&mut pb);
        let cell = (self.flow == Flow::Loaded).then(|| pb.global("g_cell", vp));

        let mut m = pb.func("main", 0);
        let ballast = m.malloc(ty);
        let a = m.malloc(ty);
        m.store(a, 5i64, i64t);
        if let Some(cell) = cell {
            let gp = m.addr_of_global(cell);
            m.store(gp, a, vp);
        }

        let churn = |m: &mut ifp_compiler::FnBuilder, n: u8| {
            for _ in 0..n {
                let d = m.malloc(ty);
                m.free(d);
            }
        };
        // The (possibly stale) pointer the late access goes through.
        let stale = |m: &mut ifp_compiler::FnBuilder| match cell {
            Some(cell) => {
                let gp = m.addr_of_global(cell);
                m.load(gp, vp)
            }
            None => a,
        };

        match self.bug {
            TemporalBug::Benign => {
                let p = stale(&mut m);
                let v = m.load(p, i64t);
                m.free(p);
                churn(&mut m, self.dummies);
                let b = m.malloc(ty);
                m.store(b, 2i64, i64t);
                let w = m.load(b, i64t);
                m.free(b);
                m.print_int(v);
                m.print_int(w);
            }
            TemporalBug::UafRead | TemporalBug::UafWrite => {
                m.free(a);
                churn(&mut m, self.dummies);
                let p = stale(&mut m);
                if self.bug == TemporalBug::UafRead {
                    let v = m.load(p, i64t);
                    m.print_int(v);
                } else {
                    m.store(p, 9i64, i64t);
                }
            }
            TemporalBug::DoubleFree => {
                m.free(a);
                churn(&mut m, self.dummies);
                m.free(a);
            }
            TemporalBug::ReallocStale => {
                m.free(a);
                churn(&mut m, self.dummies);
                let b = m.malloc(ty);
                m.store(b, 7i64, i64t);
                let p = stale(&mut m);
                let v = m.load(p, i64t);
                m.print_int(v);
                m.free(b);
            }
        }
        m.print_int(1i64); // completion marker
        m.free(ballast);
        m.ret(Some(Operand::Imm(0)));
        pb.finish_func(m);
        pb.build()
    }
}

/// What the analytic model requires of one (spec, policy) run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Completes with exactly this output and zero recorded violations.
    Complete(Vec<i64>),
    /// Traps with a temporal cause of this kind.
    Temporal(TemporalKind),
}

/// The analytic per-policy expectation for a spec (`None` for the
/// policies a bug spec is not evaluated under — the off policy's
/// behaviour on buggy programs is deliberately unspecified).
#[must_use]
pub fn expectation(spec: &TemporalSpec, policy: TemporalPolicy) -> Option<Expectation> {
    if spec.bug == TemporalBug::Benign {
        return Some(Expectation::Complete(vec![5, 2, 1]));
    }
    if policy == TemporalPolicy::Off {
        return None;
    }
    let detect = |kind| Some(Expectation::Temporal(kind));
    // The refill completes with the stale read observing the new
    // object's value, then the completion marker.
    let miss = || Some(Expectation::Complete(vec![7, 1]));
    match spec.bug {
        TemporalBug::Benign => unreachable!("handled above"),
        // No refill: the freed region stays revoked under every policy,
        // so the revoked-region check is deterministic for all three.
        TemporalBug::UafRead | TemporalBug::UafWrite => detect(TemporalKind::UseAfterFree),
        // Double frees present the freed base directly to the allocator
        // hook: deterministic for all three.
        TemporalBug::DoubleFree => detect(TemporalKind::DoubleFree),
        TemporalBug::ReallocStale => match policy {
            // Quarantine parks the chunk, the refill lands elsewhere,
            // and the stale address stays revoked.
            TemporalPolicy::Quarantine => detect(TemporalKind::UseAfterFree),
            // A memory round-trip after the refill re-stamps the pointer
            // with the new allocation's key: the documented blind spot.
            TemporalPolicy::KeyCheck | TemporalPolicy::TagCycle if spec.flow == Flow::Loaded => {
                miss()
            }
            TemporalPolicy::KeyCheck => detect(TemporalKind::UseAfterFree),
            // Direct stale use: caught unless the key distance wraps the
            // 15-tag cycle — the reuse-window escape.
            TemporalPolicy::TagCycle => {
                if (u32::from(spec.dummies) + 1) % 15 == 0 {
                    miss()
                } else {
                    detect(TemporalKind::UseAfterFree)
                }
            }
            TemporalPolicy::Off => unreachable!("handled above"),
        },
    }
}

/// Outcome classification of one temporal run.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Outcome {
    Completed { output: Vec<i64>, violations: u64 },
    Temporal { kind: TemporalKind },
    OtherTrap { trap: String },
    Errored { error: String },
}

/// Runs one policy, also reporting the modeled instructions executed
/// (up to the trap for trapping runs).
fn run_policy(program: &Program, path: TemporalPath, policy: TemporalPolicy) -> (Outcome, u64) {
    let mut cfg = VmConfig::with_mode(path.mode());
    cfg.fuel = FUEL;
    cfg.temporal = policy;
    match run(program, &cfg) {
        Ok(r) => (
            Outcome::Completed {
                output: r.output,
                violations: r.stats.temporal.violations,
            },
            r.stats.total_instrs(),
        ),
        Err(VmError::Trap {
            trap: Trap::Temporal { kind, .. },
            stats,
            ..
        }) => (Outcome::Temporal { kind }, stats.total_instrs()),
        Err(VmError::Trap {
            trap, func, stats, ..
        }) => (
            Outcome::OtherTrap {
                trap: format!("{trap} in `{func}`"),
            },
            stats.total_instrs(),
        ),
        Err(e) => (
            Outcome::Errored {
                error: e.to_string(),
            },
            0,
        ),
    }
}

fn push(out: &mut Vec<Disagreement>, class: FindingClass, detail: impl Into<String>) {
    out.push(Disagreement {
        class,
        detail: detail.into(),
    });
}

/// Everything the temporal oracle observed for one spec.
#[derive(Clone, Debug)]
pub struct TemporalEvaluation {
    /// `(policy label, outcome label)` per evaluated run.
    pub runs: Vec<(String, String)>,
    /// Every disagreement with the analytic model. Empty = clean.
    pub disagreements: Vec<Disagreement>,
    /// Modeled instructions executed across every run (including the
    /// determinism rerun) — the campaign's throughput denominator.
    pub modeled_instrs: u64,
}

/// Runs one spec under every applicable policy and judges each outcome
/// against [`expectation`]; also reruns the first policy to pin
/// determinism and cross-checks the `ifp_baselines` temporal models.
#[must_use]
pub fn evaluate_temporal(spec: &TemporalSpec) -> TemporalEvaluation {
    let program = spec.build_program();
    let mut out = Vec::new();
    let mut runs = Vec::new();
    let mut modeled_instrs = 0u64;
    let mut first: Option<(TemporalPolicy, Outcome)> = None;

    for policy in TemporalPolicy::ALL {
        let Some(want) = expectation(spec, policy) else {
            continue;
        };
        let (got, n) = run_policy(&program, spec.path, policy);
        modeled_instrs += n;
        let label = format!("{}/{}", spec.path.name(), policy.name());
        runs.push((label.clone(), outcome_label(&got)));
        judge_run(&mut out, spec, &label, &want, &got);
        if first.is_none() {
            first = Some((policy, got));
        }
    }

    // Determinism: the first evaluated policy, rerun, byte-identical.
    if let Some((policy, once)) = first {
        let (again, n) = run_policy(&program, spec.path, policy);
        modeled_instrs += n;
        if again != once {
            push(
                &mut out,
                FindingClass::Nondeterminism,
                format!("{} rerun diverged", policy.name()),
            );
        }
    }

    check_baseline_models(&mut out, spec);

    TemporalEvaluation {
        runs,
        disagreements: out,
        modeled_instrs,
    }
}

fn outcome_label(o: &Outcome) -> String {
    match o {
        Outcome::Completed { .. } => "completed".into(),
        Outcome::Temporal { kind } => format!("temporal:{kind}"),
        Outcome::OtherTrap { trap } => format!("trapped:{trap}"),
        Outcome::Errored { error } => format!("error:{error}"),
    }
}

fn judge_run(
    out: &mut Vec<Disagreement>,
    spec: &TemporalSpec,
    label: &str,
    want: &Expectation,
    got: &Outcome,
) {
    match (want, got) {
        (Expectation::Complete(want_out), Outcome::Completed { output, violations }) => {
            if output != want_out {
                push(
                    out,
                    FindingClass::OutputDivergence,
                    format!("{label}: output {output:?}, model says {want_out:?}"),
                );
            }
            if *violations != 0 {
                push(
                    out,
                    FindingClass::DefenseDisagree,
                    format!("{label}: completed but recorded {violations} violation(s)"),
                );
            }
        }
        (Expectation::Complete(_), o) => {
            let class = if spec.bug == TemporalBug::Benign {
                FindingClass::FalseTrap
            } else {
                // The model predicted this policy's blind spot; a
                // detection here means the model (or the reuse
                // accounting) is wrong.
                FindingClass::DefenseDisagree
            };
            push(
                out,
                class,
                format!("{label}: model says complete, got {}", outcome_label(o)),
            );
        }
        (Expectation::Temporal(want_kind), Outcome::Temporal { kind }) => {
            if kind != want_kind {
                push(
                    out,
                    FindingClass::DefenseDisagree,
                    format!("{label}: temporal {kind}, model says {want_kind}"),
                );
            }
        }
        (Expectation::Temporal(_), Outcome::Completed { .. }) => push(
            out,
            FindingClass::MissedBug,
            format!("{label}: planted {} completed undetected", spec.bug.name()),
        ),
        (Expectation::Temporal(_), Outcome::OtherTrap { trap }) => push(
            out,
            FindingClass::EscapedCheck,
            format!("{label}: crashed past the temporal check ({trap})"),
        ),
        (Expectation::Temporal(_), Outcome::Errored { error }) => {
            push(out, FindingClass::VmError, format!("{label}: {error}"));
        }
    }
}

/// Guaranteed verdicts of the `ifp_baselines` temporal models, checked
/// once per spec (the MTE stream is per-spec seeded).
fn check_baseline_models(out: &mut Vec<Disagreement>, spec: &TemporalSpec) {
    let asan = temporal_row(&mut Asan::new());
    if !asan.use_after_free || !asan.double_free {
        push(
            out,
            FindingClass::DefenseDisagree,
            "asan: unbounded quarantine must catch both temporal bugs",
        );
    }
    let evicted = temporal_row(&mut Asan::with_quarantine(0));
    if evicted.use_after_free || evicted.double_free {
        push(
            out,
            FindingClass::DefenseDisagree,
            "asan: a zero-byte quarantine must evict immediately and miss",
        );
    }
    let sb = temporal_row(&mut SoftBound::new());
    if sb.use_after_free || sb.double_free {
        push(
            out,
            FindingClass::DefenseDisagree,
            "softbound: keeps no free-time state, must miss both",
        );
    }
    // MTE decides both verdicts with the same stale-tag comparison, so
    // they must agree for every seed.
    let mte = temporal_row(&mut Mte::with_seed(spec.seed));
    if mte.use_after_free != mte.double_free {
        push(
            out,
            FindingClass::DefenseDisagree,
            format!(
                "mte: uaf {} but double-free {} for the same tag compare",
                mte.use_after_free, mte.double_free
            ),
        );
    }
}

/// Temporal campaign parameters.
#[derive(Clone, Debug)]
pub struct TemporalCampaignConfig {
    /// The campaign seed: the sole source of randomness.
    pub seed: u64,
    /// Number of iterations (specs) to run.
    pub iterations: u64,
    /// Worker threads.
    pub workers: usize,
}

impl Default for TemporalCampaignConfig {
    fn default() -> Self {
        TemporalCampaignConfig {
            seed: 0,
            iterations: 1000,
            workers: 1,
        }
    }
}

/// One disagreement a temporal campaign surfaced.
#[derive(Clone, Debug)]
pub struct TemporalFinding {
    /// The ticket that produced it.
    pub iteration: u64,
    /// The offending spec.
    pub spec: TemporalSpec,
    /// Every disagreement the oracle flagged for it.
    pub disagreements: Vec<Disagreement>,
}

/// What a temporal campaign produced.
#[derive(Debug)]
pub struct TemporalCampaignReport {
    /// The configuration that ran.
    pub config: TemporalCampaignConfig,
    /// Wall-clock time of the worker-pool phase.
    pub elapsed: Duration,
    /// Findings, in iteration order.
    pub findings: Vec<TemporalFinding>,
    /// Hit counts per policy×path×bug×flow cell (bug specs only).
    pub coverage: BTreeMap<String, u64>,
    /// Modeled instructions executed by the worker-pool phase.
    pub modeled_instrs: u64,
    /// Number of cells the generator can reach.
    pub total_cells: usize,
}

fn cell(policy: TemporalPolicy, spec: &TemporalSpec) -> String {
    format!(
        "{}\u{d7}{}\u{d7}{}\u{d7}{}",
        policy.name(),
        spec.path.name(),
        spec.bug.name(),
        spec.flow.name()
    )
}

fn cells_of(spec: &TemporalSpec) -> Vec<String> {
    if spec.bug == TemporalBug::Benign {
        return Vec::new();
    }
    TemporalPolicy::ENFORCING
        .into_iter()
        .map(|p| cell(p, spec))
        .collect()
}

/// Every coverage cell the generator can reach: 3 enforcing policies ×
/// 3 paths × (3 two-flow bugs + direct-only double free).
#[must_use]
pub fn reachable_temporal_cells() -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for policy in TemporalPolicy::ENFORCING {
        for path in TemporalPath::ALL {
            for bug in TemporalBug::ALL {
                if bug == TemporalBug::Benign {
                    continue;
                }
                for flow in [Flow::Direct, Flow::Loaded] {
                    if bug == TemporalBug::DoubleFree && flow == Flow::Loaded {
                        continue;
                    }
                    let spec = TemporalSpec {
                        seed: 0,
                        bug,
                        path,
                        flow,
                        dummies: 0,
                    };
                    out.insert(cell(policy, &spec));
                }
            }
        }
    }
    out
}

/// The spec ticket `i` of temporal campaign `seed` produces — a pure
/// function of `(seed, i)`, worker-count invariant.
#[must_use]
pub fn temporal_spec_for_ticket(seed: u64, i: u64) -> TemporalSpec {
    TemporalSpec::generate(&mut Rng::stream(seed, i))
}

/// Runs a temporal campaign to completion.
///
/// # Panics
///
/// Panics if a worker thread itself dies outside the per-case guard
/// (a harness bug, not a finding).
#[must_use]
pub fn run_temporal_campaign(config: &TemporalCampaignConfig) -> TemporalCampaignReport {
    let next = AtomicU64::new(0);
    let raw: Mutex<Vec<TemporalFinding>> = Mutex::new(Vec::new());
    let workers = config.workers.max(1);

    let started = std::time::Instant::now();
    let (coverage, modeled_instrs) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local_cov: BTreeMap<String, u64> = BTreeMap::new();
                    let mut local_instrs = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= config.iterations {
                            break;
                        }
                        let spec = temporal_spec_for_ticket(config.seed, i);
                        for c in cells_of(&spec) {
                            *local_cov.entry(c).or_default() += 1;
                        }
                        match catch_unwind(AssertUnwindSafe(|| evaluate_temporal(&spec))) {
                            Ok(eval) if eval.disagreements.is_empty() => {
                                local_instrs += eval.modeled_instrs;
                            }
                            Ok(eval) => {
                                local_instrs += eval.modeled_instrs;
                                raw.lock().unwrap().push(TemporalFinding {
                                    iteration: i,
                                    spec,
                                    disagreements: eval.disagreements,
                                });
                            }
                            Err(payload) => {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(ToString::to_string)
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "non-string panic".into());
                                raw.lock().unwrap().push(TemporalFinding {
                                    iteration: i,
                                    spec,
                                    disagreements: vec![Disagreement {
                                        class: FindingClass::HarnessPanic,
                                        detail: msg,
                                    }],
                                });
                            }
                        }
                    }
                    (local_cov, local_instrs)
                })
            })
            .collect();
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        let mut instrs = 0u64;
        for h in handles {
            let (cov, n) = h.join().expect("worker thread died");
            for (k, v) in cov {
                *merged.entry(k).or_default() += v;
            }
            instrs += n;
        }
        (merged, instrs)
    });
    let elapsed = started.elapsed();

    let mut findings = raw.into_inner().unwrap();
    findings.sort_by_key(|f| f.iteration);

    TemporalCampaignReport {
        config: config.clone(),
        elapsed,
        findings,
        coverage,
        modeled_instrs,
        total_cells: reachable_temporal_cells().len(),
    }
}

impl TemporalCampaignReport {
    /// Iterations per wall-clock second.
    #[must_use]
    pub fn iters_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.config.iterations as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Modeled instructions per wall-clock second.
    #[must_use]
    pub fn instrs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.modeled_instrs as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// The summary table the CLI prints.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("ifp-fuzz temporal campaign\n");
        s.push_str(&format!("  seed        {:#x}\n", self.config.seed));
        s.push_str(&format!("  iterations  {}\n", self.config.iterations));
        s.push_str(&format!("  workers     {}\n", self.config.workers.max(1)));
        s.push_str(&format!(
            "  elapsed     {:.2}s ({:.0} iters/sec)\n",
            self.elapsed.as_secs_f64(),
            self.iters_per_sec()
        ));
        s.push_str(&format!(
            "  throughput  {} modeled instrs ({:.2}M instrs/sec)\n",
            self.modeled_instrs,
            self.instrs_per_sec() / 1e6
        ));
        s.push_str(&format!(
            "  coverage    {}/{} policy\u{d7}path\u{d7}bug\u{d7}flow cells\n",
            self.coverage.len(),
            self.total_cells
        ));
        s.push_str(&format!("  findings    {}\n", self.findings.len()));
        for f in &self.findings {
            s.push_str(&format!(
                "\nfinding @ iteration {}: {}\n  spec: {:?}\n",
                f.iteration,
                f.disagreements
                    .iter()
                    .map(|d| format!("[{}] {}", d.class.name(), d.detail))
                    .collect::<Vec<_>>()
                    .join("; "),
                f.spec
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bug: TemporalBug, path: TemporalPath, flow: Flow, dummies: u8) -> TemporalSpec {
        let mut s = TemporalSpec {
            seed: 0x7e3,
            bug,
            path,
            flow,
            dummies,
        };
        s.sanitize();
        s
    }

    #[test]
    fn reachable_temporal_cell_count_is_stable() {
        // 3 policies × 3 paths × (3 bugs × 2 flows + double-free direct).
        assert_eq!(reachable_temporal_cells().len(), 3 * 3 * 7);
    }

    #[test]
    fn the_full_matrix_agrees_with_the_model() {
        for bug in TemporalBug::ALL {
            for path in TemporalPath::ALL {
                for flow in [Flow::Direct, Flow::Loaded] {
                    for dummies in [0u8, 3, 14] {
                        let s = spec(bug, path, flow, dummies);
                        let e = evaluate_temporal(&s);
                        assert!(e.disagreements.is_empty(), "{s:?}\n{:#?}", e.disagreements);
                    }
                }
            }
        }
    }

    #[test]
    fn tag_wraparound_is_the_planted_reuse_window_escape() {
        // 14 intervening allocations put the refill key one full tag
        // cycle past the stale key: tag-cycle misses, key-check does not.
        let wrap = spec(
            TemporalBug::ReallocStale,
            TemporalPath::Wrapped,
            Flow::Direct,
            14,
        );
        assert_eq!(
            expectation(&wrap, TemporalPolicy::TagCycle),
            Some(Expectation::Complete(vec![7, 1]))
        );
        assert_eq!(
            expectation(&wrap, TemporalPolicy::KeyCheck),
            Some(Expectation::Temporal(TemporalKind::UseAfterFree))
        );
        let off_by_one = spec(
            TemporalBug::ReallocStale,
            TemporalPath::Wrapped,
            Flow::Direct,
            13,
        );
        assert_eq!(
            expectation(&off_by_one, TemporalPolicy::TagCycle),
            Some(Expectation::Temporal(TemporalKind::UseAfterFree))
        );
        // And the VM agrees with both predictions.
        for s in [wrap, off_by_one] {
            let e = evaluate_temporal(&s);
            assert!(e.disagreements.is_empty(), "{s:?}\n{:#?}", e.disagreements);
        }
    }

    #[test]
    fn generation_is_deterministic_and_sanitized() {
        for i in 0..64 {
            let a = temporal_spec_for_ticket(0xabc, i);
            let b = temporal_spec_for_ticket(0xabc, i);
            assert_eq!(a, b);
            assert!(a.dummies < 15);
            if a.bug == TemporalBug::DoubleFree {
                assert_eq!(a.flow, Flow::Direct);
            }
        }
    }

    #[test]
    fn small_campaign_is_clean_and_worker_invariant() {
        let config = TemporalCampaignConfig {
            seed: 0x7e9,
            iterations: 24,
            workers: 2,
        };
        let report = run_temporal_campaign(&config);
        assert!(report.findings.is_empty(), "{}", report.render());
        assert!(!report.coverage.is_empty());
        let solo = run_temporal_campaign(&TemporalCampaignConfig {
            workers: 1,
            ..config
        });
        assert_eq!(report.coverage, solo.coverage, "worker-count invariance");
        assert!(report.render().contains("iterations  24"));
    }
}
