//! The corpus: minimized findings persisted as JSON, with replay.
//!
//! One file per finding, named by the campaign iteration that produced
//! it, containing the minimized spec, the original (pre-shrink) spec,
//! the disagreement classes, and the forensic attachment. The writer is
//! byte-deterministic: the same campaign seed produces the same files.

use crate::json::{parse, Value};
use crate::oracle::{Disagreement, FindingClass};
use crate::spec::CaseSpec;
use std::path::{Path, PathBuf};

/// Corpus format version.
pub const FORMAT_VERSION: i64 = 1;

/// One persisted finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Campaign iteration that produced the case.
    pub iteration: u64,
    /// The campaign seed, for provenance.
    pub campaign_seed: u64,
    /// Every oracle disagreement the case produced.
    pub disagreements: Vec<Disagreement>,
    /// The minimized reproducer.
    pub spec: CaseSpec,
    /// The original spec, before shrinking.
    pub original: CaseSpec,
    /// Rendered forensic report from the traced instrumented rerun.
    pub forensics: String,
}

impl Finding {
    /// Serializes into the corpus JSON shape.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("version".into(), Value::Num(FORMAT_VERSION)),
            ("iteration".into(), Value::Num(self.iteration as i64)),
            (
                "campaign_seed".into(),
                Value::Str(format!("{:#x}", self.campaign_seed)),
            ),
            (
                "findings".into(),
                Value::Arr(
                    self.disagreements
                        .iter()
                        .map(|d| {
                            Value::Obj(vec![
                                ("class".into(), Value::Str(d.class.name().into())),
                                ("detail".into(), Value::Str(d.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("spec".into(), self.spec.to_json()),
            ("original".into(), self.original.to_json()),
            ("forensics".into(), Value::Str(self.forensics.clone())),
        ])
    }

    /// Deserializes from the corpus JSON shape.
    ///
    /// # Errors
    ///
    /// Reports the first structural problem found.
    pub fn from_json(v: &Value) -> Result<Finding, String> {
        let version = v
            .get("version")
            .and_then(Value::as_i64)
            .ok_or("missing version")?;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported corpus version {version}"));
        }
        let iteration = v
            .get("iteration")
            .and_then(Value::as_i64)
            .ok_or("missing iteration")? as u64;
        let campaign_seed = v
            .get("campaign_seed")
            .and_then(Value::as_str)
            .and_then(crate::spec::parse_seed)
            .ok_or("missing campaign_seed")?;
        let disagreements = v
            .get("findings")
            .and_then(Value::as_arr)
            .ok_or("missing findings")?
            .iter()
            .map(|d| {
                let class = d
                    .get("class")
                    .and_then(Value::as_str)
                    .and_then(FindingClass::from_name)
                    .ok_or("bad finding class")?;
                let detail = d
                    .get("detail")
                    .and_then(Value::as_str)
                    .ok_or("bad finding detail")?
                    .to_string();
                Ok(Disagreement { class, detail })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let spec = CaseSpec::from_json(v.get("spec").ok_or("missing spec")?)?;
        let original = CaseSpec::from_json(v.get("original").ok_or("missing original")?)?;
        let forensics = v
            .get("forensics")
            .and_then(Value::as_str)
            .ok_or("missing forensics")?
            .to_string();
        Ok(Finding {
            iteration,
            campaign_seed,
            disagreements,
            spec,
            original,
            forensics,
        })
    }

    /// The corpus file name for this finding.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("finding-{:06}.json", self.iteration)
    }
}

/// Writes every finding into `dir` (created if absent). Returns the
/// paths written, in iteration order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus(dir: &Path, findings: &[Finding]) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for f in findings {
        let path = dir.join(f.file_name());
        let mut text = f.to_json().to_string();
        text.push('\n');
        std::fs::write(&path, text)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads one corpus file.
///
/// # Errors
///
/// Reports IO and parse problems as strings (CLI-facing).
pub fn load_finding(path: &Path) -> Result<Finding, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let v = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Finding::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifp_testutil::Rng;

    fn sample() -> Finding {
        let mut rng = Rng::new(8);
        let original = CaseSpec::generate(&mut rng);
        let spec = CaseSpec::generate(&mut rng);
        Finding {
            iteration: 42,
            campaign_seed: 0xdead_beef,
            disagreements: vec![Disagreement {
                class: FindingClass::MissedBug,
                detail: "subheap: bad case completed undetected".into(),
            }],
            spec,
            original,
            forensics: "bounds violation in `main`: 4-byte access at 0x2010".into(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let f = sample();
        let text = f.to_json().to_string();
        let back = Finding::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn corpus_files_are_byte_deterministic() {
        let dir1 = std::env::temp_dir().join("ifp-fuzz-corpus-test-1");
        let dir2 = std::env::temp_dir().join("ifp-fuzz-corpus-test-2");
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
        let f = sample();
        let p1 = write_corpus(&dir1, std::slice::from_ref(&f)).unwrap();
        let p2 = write_corpus(&dir2, std::slice::from_ref(&f)).unwrap();
        let b1 = std::fs::read(&p1[0]).unwrap();
        let b2 = std::fs::read(&p2[0]).unwrap();
        assert_eq!(b1, b2);
        assert!(!b1.is_empty());
        let back = load_finding(&p1[0]).unwrap();
        assert_eq!(back, f);
        let _ = std::fs::remove_dir_all(&dir1);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}
