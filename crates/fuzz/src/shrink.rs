//! Greedy reproducer minimization.
//!
//! Given a spec and a predicate ("still reproduces the finding"), the
//! shrinker tries a fixed schedule of simplifications — drop filler and
//! decoys, delete sibling fields, halve the array, simplify the flow
//! variant and the site — accepting any candidate the predicate keeps,
//! and repeats to a fixpoint. The schedule is deterministic and the
//! predicate is consulted at most [`MAX_EVALS`] times, so shrinking a
//! pathological case cannot stall a campaign.

use crate::spec::CaseSpec;
use ifp_juliet::{Site, Variant};

/// Cap on predicate evaluations per shrink.
pub const MAX_EVALS: usize = 200;

/// All single-step simplification candidates of `spec`, most aggressive
/// first. Every candidate is sanitized.
fn candidates(spec: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut CaseSpec)| {
        let mut c = spec.clone();
        f(&mut c);
        c.sanitize();
        if c != *spec {
            out.push(c);
        }
    };
    if spec.filler > 0 {
        push(&|c| c.filler = 0);
    }
    if spec.deco > 0 {
        push(&|c| c.deco = 0);
    }
    if !spec.post.is_empty() {
        push(&|c| {
            c.post.pop();
        });
        push(&|c| c.post.clear());
    }
    if !spec.pre.is_empty() {
        push(&|c| {
            c.pre.pop();
        });
        push(&|c| c.pre.clear());
    }
    if spec.len > 1 {
        push(&|c| c.len = 1);
        push(&|c| c.len /= 2);
        push(&|c| c.len -= 1);
    }
    if spec.oob > 1 {
        push(&|c| c.oob = 1);
    }
    if spec.elem_size != 4 {
        push(&|c| c.elem_size = 4);
    }
    if spec.wrap_struct {
        push(&|c| c.wrap_struct = false);
    }
    if spec.variant != Variant::Direct {
        push(&|c| c.variant = Variant::Direct);
    }
    if spec.site != Site::Stack {
        push(&|c| c.site = Site::Stack);
    }
    if spec.seed != 0 {
        push(&|c| c.seed = 0);
    }
    out
}

/// Shrinks `spec` while `still_fails` holds, returning the smallest
/// accepted spec. `spec` itself is assumed to fail.
pub fn shrink_with(spec: &CaseSpec, mut still_fails: impl FnMut(&CaseSpec) -> bool) -> CaseSpec {
    let mut current = spec.clone();
    let mut evals = 0usize;
    loop {
        let mut advanced = false;
        for cand in candidates(&current) {
            if evals >= MAX_EVALS {
                return current;
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                advanced = true;
                break; // restart the schedule from the smaller spec
            }
        }
        if !advanced {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifp_juliet::CaseKind;
    use ifp_testutil::Rng;

    #[test]
    fn shrinks_to_minimal_form_under_a_permissive_predicate() {
        // Predicate: any bad case reproduces. The shrinker should strip
        // everything optional.
        let mut rng = Rng::new(21);
        let mut spec = CaseSpec::generate(&mut rng);
        spec.kind = CaseKind::Bad;
        spec.filler = 5;
        spec.deco = 2;
        spec.sanitize();
        let small = shrink_with(&spec, |c| c.kind == CaseKind::Bad);
        assert_eq!(small.filler, 0);
        assert_eq!(small.deco, 0);
        assert!(small.pre.is_empty());
        assert!(small.post.is_empty());
        assert_eq!(small.len, 1);
        assert_eq!(small.oob, 1);
        assert_eq!(small.variant, Variant::Direct);
        assert_eq!(small.site, Site::Stack);
    }

    #[test]
    fn respects_the_predicate() {
        // Predicate: the loaded-flow variant is load-bearing.
        let mut rng = Rng::new(22);
        let mut spec = CaseSpec::generate(&mut rng);
        spec.variant = Variant::LoadedFlow;
        spec.sanitize();
        let small = shrink_with(&spec, |c| c.variant == Variant::LoadedFlow);
        assert_eq!(small.variant, Variant::LoadedFlow);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let spec = CaseSpec::generate(&mut Rng::new(33));
        let a = shrink_with(&spec, |_| true);
        let b = shrink_with(&spec, |_| true);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_budget_is_respected() {
        let spec = CaseSpec::generate(&mut Rng::new(44));
        let mut calls = 0usize;
        let _ = shrink_with(&spec, |_| {
            calls += 1;
            calls.is_multiple_of(2) // flip-flop: keeps generating work
        });
        assert!(calls <= MAX_EVALS);
    }
}
