//! Simulated memory substrate for the In-Fat Pointer reproduction.
//!
//! The paper evaluates on a Digilent Genesys 2 board: a CVA6 core with small
//! L1 caches in front of 1 GB of DDR3. This crate substitutes that physical
//! substrate with:
//!
//! * [`Memory`] — a sparse, page-granular 48-bit address space with explicit
//!   mapping (unmapped accesses model page faults) and resident-size
//!   statistics (used for the paper's `time -v` memory-overhead numbers);
//! * [`Cache`] — a set-associative, write-allocate L1 data-cache model with
//!   LRU replacement, used to reproduce the cache-thrashing analysis in
//!   §5.2.2 (health/ft under the wrapped vs subheap allocators);
//! * [`MemSystem`] — the pairing of the two, which every simulated memory
//!   access flows through so that hit/miss outcomes can feed the cycle model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod layout;

pub use cache::{Cache, CacheConfig, CacheStats};

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Byte size of a simulated page.
pub const PAGE_SIZE: u64 = 4096;

/// Error raised by simulated memory accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access touched an address with no mapped page (a page fault).
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// Access ran past the end of the 48-bit address space.
    OutOfAddressSpace {
        /// The first address past the end of the access.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "page fault at {addr:#x}"),
            MemError::OutOfAddressSpace { addr } => {
                write!(f, "access past end of address space at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Running counters for raw memory traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// Fibonacci-multiply hasher for page numbers. Page keys are single
/// `u64`s already close to uniform after multiplication by the golden
/// ratio; the default SipHash costs more than the probe it guards on this
/// hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by u64 keys, kept total for safety).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Hash-map state for [`PageHasher`]-keyed tables.
pub type PageHasherState = BuildHasherDefault<PageHasher>;

/// Entries in the direct-mapped page-translation cache fronting the page
/// index. Must be a power of two.
const TLB_SIZE: usize = 128;

/// Slot index for `page` in the translation cache. Region bases sit at
/// round addresses (globals, global table, heap, stack), so their page
/// numbers are all ≡ 0 modulo any power of two — a plain `page & mask`
/// would pile them into slot 0 and thrash. Fibonacci hashing spreads
/// them for one multiply.
#[inline]
fn tlb_slot(page: u64) -> usize {
    (page.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize & (TLB_SIZE - 1)
}

/// Frames the arena reserves capacity for up front, so early growth never
/// realloc-copies (64 frames = 256 KiB; tiny runs stay well under it).
const ARENA_RESERVE_FRAMES: usize = 64;

/// Page-index capacity reserved at construction. Every run maps a few
/// dozen pages (globals, global table, heap arena, stack) before touching
/// any, so starting at the default capacity costs several rehash-and-grow
/// cycles during setup.
const INDEX_RESERVE_PAGES: usize = 64;

/// Sentinel for an empty TLB slot — never a valid page number (pages fit
/// in 36 bits).
const TLB_INVALID: u64 = u64::MAX;

/// Page-index value for a page that is mapped but has no backing frame
/// yet. Frames are allocated (and zeroed) on first touch, so mapping a
/// large region that is only sparsely accessed costs nothing per page;
/// the mapped-page accounting is unaffected. Never a real frame index —
/// the arena would have to reach 16 TiB first.
const FRAME_LAZY: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: u64,
    frame: u32,
}

/// A sparse 48-bit simulated memory.
///
/// Pages must be explicitly mapped before access; touching an unmapped page
/// returns [`MemError::Unmapped`], which the machine surfaces as a page
/// fault (notably from metadata fetches inside `promote`). The peak number
/// of mapped bytes stands in for the maximum resident set size that the
/// paper reads from `time -v`.
///
/// Internally, page data lives in a contiguous frame arena indexed by a
/// page table (`page -> frame`), fronted by a small direct-mapped
/// translation cache: the common single-page access resolves with one
/// compare-and-mask instead of a hash probe. Mapping records the page but
/// defers frame allocation (and its zero-fill) to the first access, so
/// sparsely used regions like the global metadata table cost nothing per
/// untouched page. Frames of unmapped pages go on a free list and are
/// zeroed on reuse, so the arena never shrinks but also never grows past
/// the peak touched working set.
///
/// # Examples
///
/// ```
/// use ifp_mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.map(0x1000, 4096);
/// mem.write_u64(0x1000, 0xdead_beef).unwrap();
/// assert_eq!(mem.read_u64(0x1000).unwrap(), 0xdead_beef);
/// assert!(mem.read_u8(0x8000_0000).is_err());
/// ```
pub struct Memory {
    /// Page number -> frame index into `arena`.
    index: HashMap<u64, u32, PageHasherState>,
    /// Frame storage; frame `i` occupies `i * PAGE_SIZE ..`.
    arena: Vec<u8>,
    /// Frames released by `unmap`, zeroed again when remapped.
    free_frames: Vec<u32>,
    /// Direct-mapped translation cache over `index`.
    tlb: [TlbEntry; TLB_SIZE],
    stats: MemStats,
    peak_mapped_pages: usize,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            index: HashMap::with_capacity_and_hasher(
                INDEX_RESERVE_PAGES,
                PageHasherState::default(),
            ),
            arena: Vec::new(),
            free_frames: Vec::new(),
            tlb: [TlbEntry {
                page: TLB_INVALID,
                frame: 0,
            }; TLB_SIZE],
            stats: MemStats::default(),
            peak_mapped_pages: 0,
        }
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.index.len())
            .field("peak_mapped_pages", &self.peak_mapped_pages)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// Creates an empty memory with nothing mapped.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// Resolves `page` to its arena byte offset, first through the TLB,
    /// then through the page index (filling the TLB slot on the way out).
    /// A mapped-but-lazy page gets its frame allocated and zeroed here,
    /// on first touch.
    #[inline]
    fn frame_offset(&mut self, page: u64) -> Option<usize> {
        let slot = tlb_slot(page);
        let e = self.tlb[slot];
        if e.page == page {
            return Some(e.frame as usize * PAGE_SIZE as usize);
        }
        self.frame_offset_slow(page, slot)
    }

    /// TLB-miss path of [`Memory::frame_offset`]: probe the page index,
    /// allocate the backing frame if this is the page's first touch.
    fn frame_offset_slow(&mut self, page: u64, slot: usize) -> Option<usize> {
        let mut frame = *self.index.get(&page)?;
        if frame == FRAME_LAZY {
            frame = self.alloc_frame();
            self.index.insert(page, frame);
        }
        self.tlb[slot] = TlbEntry { page, frame };
        Some(frame as usize * PAGE_SIZE as usize)
    }

    /// Produces a zeroed frame: recycles one off the free list, or grows
    /// the arena by a page.
    fn alloc_frame(&mut self) -> u32 {
        match self.free_frames.pop() {
            Some(f) => {
                // Recycled frame: scrub the stale contents so a fresh
                // mapping always reads as zero.
                let off = f as usize * PAGE_SIZE as usize;
                self.arena[off..off + PAGE_SIZE as usize].fill(0);
                f
            }
            None => {
                let f = u32::try_from(self.arena.len() / PAGE_SIZE as usize)
                    .expect("arena stays below 16 TiB");
                if self.arena.capacity() == 0 {
                    self.arena
                        .reserve(ARENA_RESERVE_FRAMES * PAGE_SIZE as usize);
                }
                self.arena.resize(self.arena.len() + PAGE_SIZE as usize, 0);
                f
            }
        }
    }

    /// Maps (zero-filled) every page overlapping `[base, base + len)`.
    /// Already-mapped pages are left untouched. Backing storage is
    /// allocated on first access, so mapping a large, sparsely used
    /// region is cheap.
    pub fn map(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(base);
        let last = Self::page_of(base + len - 1);
        for page in first..=last {
            self.index.entry(page).or_insert(FRAME_LAZY);
        }
        self.peak_mapped_pages = self.peak_mapped_pages.max(self.index.len());
    }

    /// Unmaps every page *fully contained* in `[base, base + len)`.
    ///
    /// Pages only partially overlapped by the range — the edge pages when
    /// `base` or `base + len` is not page-aligned — stay mapped, by
    /// design: a page may back more than one allocation, so releasing a
    /// sub-page range must not fault its neighbors. Callers that want the
    /// edge pages gone must pass a page-aligned range covering them.
    pub fn unmap(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = base.div_ceil(PAGE_SIZE);
        let end = base + len;
        let last_exclusive = end / PAGE_SIZE;
        for page in first..last_exclusive {
            if let Some(frame) = self.index.remove(&page) {
                if frame != FRAME_LAZY {
                    self.free_frames.push(frame);
                    let slot = tlb_slot(page);
                    if self.tlb[slot].page == page {
                        self.tlb[slot].page = TLB_INVALID;
                    }
                }
            }
        }
    }

    /// Whether every byte of `[addr, addr + len)` is mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + len - 1);
        (first..=last).all(|p| self.index.contains_key(&p))
    }

    /// Currently mapped bytes.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.index.len() as u64 * PAGE_SIZE
    }

    /// High-water mark of mapped bytes (the simulated max resident size).
    #[must_use]
    pub fn peak_mapped_bytes(&self) -> u64 {
        self.peak_mapped_pages as u64 * PAGE_SIZE
    }

    /// Raw traffic counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn check_range(addr: u64, len: u64) -> Result<(), MemError> {
        let end = addr
            .checked_add(len)
            .ok_or(MemError::OutOfAddressSpace { addr })?;
        if end > 1 << 48 {
            return Err(MemError::OutOfAddressSpace { addr: end });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] at the first unmapped byte.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        Self::check_range(addr, buf.len() as u64)?;
        let in_page = (addr % PAGE_SIZE) as usize;
        if buf.is_empty() {
            // Zero-length access: counted, never faults.
        } else if in_page + buf.len() <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page.
            let off = self
                .frame_offset(Self::page_of(addr))
                .ok_or(MemError::Unmapped { addr })?
                + in_page;
            buf.copy_from_slice(&self.arena[off..off + buf.len()]);
        } else {
            self.read_multi(addr, buf)?;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Page-crossing read.
    fn read_multi(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let in_page = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let base = self
                .frame_offset(Self::page_of(a))
                .ok_or(MemError::Unmapped { addr: a })?
                + in_page;
            buf[off..off + chunk].copy_from_slice(&self.arena[base..base + chunk]);
            off += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] at the first unmapped byte; the
    /// whole range is validated up front, so a partial write never occurs.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        Self::check_range(addr, buf.len() as u64)?;
        let in_page = (addr % PAGE_SIZE) as usize;
        if buf.is_empty() {
            // Zero-length access: counted, never faults.
        } else if in_page + buf.len() <= PAGE_SIZE as usize {
            // Fast path: the access stays within one page.
            let off = self
                .frame_offset(Self::page_of(addr))
                .ok_or(MemError::Unmapped { addr })?
                + in_page;
            self.arena[off..off + buf.len()].copy_from_slice(buf);
        } else {
            self.validate_pages(addr, buf.len() as u64)?;
            let mut off = 0usize;
            while off < buf.len() {
                let a = addr + off as u64;
                let in_page = (a % PAGE_SIZE) as usize;
                let chunk = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
                let base = self
                    .frame_offset(Self::page_of(a))
                    .expect("validated above")
                    + in_page;
                self.arena[base..base + chunk].copy_from_slice(&buf[off..off + chunk]);
                off += chunk;
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += buf.len() as u64;
        Ok(())
    }

    /// Checks that every page of `[addr, addr + len)` is mapped, reporting
    /// the first unmapped address (the access start for the first page, a
    /// page boundary after it). `len` must be non-zero.
    fn validate_pages(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + len - 1);
        for p in first..=last {
            if self.frame_offset(p).is_none() {
                let fault = if p == first { addr } else { p * PAGE_SIZE };
                return Err(MemError::Unmapped { addr: fault });
            }
        }
        Ok(())
    }

    /// Reads a little-endian `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u8(&mut self, addr: u64) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u16(&mut self, addr: u64) -> Result<u16, MemError> {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u32(&mut self, addr: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Unmaps everything and zeroes the statistics, returning the memory
    /// to its just-constructed observable state while keeping the frame
    /// arena, free list, and page-index capacity for reuse. Frames are
    /// scrubbed on reallocation (the `alloc_frame` recycle path), so a
    /// reset memory reads back exactly like a fresh one.
    pub fn reset(&mut self) {
        for (_, frame) in self.index.drain() {
            if frame != FRAME_LAZY {
                self.free_frames.push(frame);
            }
        }
        self.tlb = [TlbEntry {
            page: TLB_INVALID,
            frame: 0,
        }; TLB_SIZE];
        self.stats = MemStats::default();
        self.peak_mapped_pages = 0;
    }

    /// Fills `[addr, addr + len)` with `byte` without staging a buffer.
    /// Counted as a single write of `len` bytes, like
    /// [`Memory::write_bytes`] of an equal-sized buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access; the whole range is
    /// validated up front, so a partial fill never occurs.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) -> Result<(), MemError> {
        Self::check_range(addr, len)?;
        if len > 0 {
            self.validate_pages(addr, len)?;
            let mut off = 0u64;
            while off < len {
                let a = addr + off;
                let in_page = (a % PAGE_SIZE) as usize;
                let chunk = (PAGE_SIZE - in_page as u64).min(len - off);
                let base = self
                    .frame_offset(Self::page_of(a))
                    .expect("validated above")
                    + in_page;
                self.arena[base..base + chunk as usize].fill(byte);
                off += chunk;
            }
        }
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        Ok(())
    }
}

/// The memory hierarchy every simulated access flows through: sparse
/// backing [`Memory`] fronted by an L1 data [`Cache`].
///
/// Accessors return the value together with the cache outcome so the cycle
/// model can charge a miss penalty. Metadata fetches from the IFP unit use
/// the same path, which is what makes the subheap scheme's metadata sharing
/// visible as a cache-footprint win (paper §5.2.2).
#[derive(Debug)]
pub struct MemSystem {
    /// The backing sparse memory.
    pub mem: Memory,
    /// The L1 data-cache model.
    pub l1d: Cache,
}

/// Outcome of an access through the cache hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Whether the L1 lookup hit.
    pub l1_hit: bool,
}

impl MemSystem {
    /// Creates a memory system with the given L1 configuration.
    #[must_use]
    pub fn new(l1: CacheConfig) -> Self {
        MemSystem {
            mem: Memory::new(),
            l1d: Cache::new(l1),
        }
    }

    /// Creates a memory system with the default (CVA6-like) L1: 32 KiB,
    /// 8-way, 16-byte lines.
    #[must_use]
    pub fn with_default_l1() -> Self {
        MemSystem::new(CacheConfig::default())
    }

    /// Returns the whole hierarchy to its just-constructed observable
    /// state under a (possibly new) L1 geometry, reusing the backing
    /// memory's arena and — when the geometry is unchanged — the cache's
    /// line buffer. This is what lets a pooled VM image be recycled
    /// without paying construction cost per run.
    pub fn reset(&mut self, l1: CacheConfig) {
        self.mem.reset();
        if self.l1d.config() == l1 {
            self.l1d.reset();
        } else {
            self.l1d = Cache::new(l1);
        }
    }

    /// Reads `buf.len()` bytes through the cache.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access; the cache is not touched in
    /// that case (the fault aborts the access).
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<Access, MemError> {
        self.mem.read_bytes(addr, buf)?;
        let l1_hit = self.l1d.access_range(addr, buf.len() as u64, false);
        Ok(Access { l1_hit })
    }

    /// Writes `buf` through the cache.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<Access, MemError> {
        self.mem.write_bytes(addr, buf)?;
        let l1_hit = self.l1d.access_range(addr, buf.len() as u64, true);
        Ok(Access { l1_hit })
    }

    /// Reads a little-endian unsigned integer of `size` ∈ {1, 2, 4, 8} bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_uint(&mut self, addr: u64, size: u64) -> Result<(u64, Access), MemError> {
        let mut buf = [0u8; 8];
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let acc = self.read(addr, &mut buf[..size as usize])?;
        Ok((u64::from_le_bytes(buf), acc))
    }

    /// Writes the low `size` ∈ {1, 2, 4, 8} bytes of `v`, little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, size: u64, v: u64) -> Result<Access, MemError> {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let bytes = v.to_le_bytes();
        self.write(addr, &bytes[..size as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_is_a_page_fault() {
        let mut mem = Memory::new();
        assert_eq!(
            mem.read_u8(0x5000),
            Err(MemError::Unmapped { addr: 0x5000 })
        );
    }

    #[test]
    fn map_write_read_roundtrip() {
        let mut mem = Memory::new();
        mem.map(0x1000, 8192);
        for (i, v) in [(0x1000u64, 0x11u8), (0x1fff, 0x22), (0x2abc, 0x33)] {
            mem.write_u8(i, v).unwrap();
            assert_eq!(mem.read_u8(i).unwrap(), v);
        }
    }

    #[test]
    fn cross_page_access_works() {
        let mut mem = Memory::new();
        mem.map(0x1000, 8192);
        mem.write_u64(0x1ffc, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(mem.read_u64(0x1ffc).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn cross_page_fault_does_not_partially_write() {
        let mut mem = Memory::new();
        mem.map(0x1000, 4096); // only one page
        let before = mem.read_u32(0x1ffc).unwrap();
        assert!(mem.write_u64(0x1ffc, u64::MAX).is_err());
        assert_eq!(mem.read_u32(0x1ffc).unwrap(), before, "no partial write");
    }

    #[test]
    fn peak_mapped_tracks_high_water_mark() {
        let mut mem = Memory::new();
        mem.map(0, PAGE_SIZE * 10);
        assert_eq!(mem.mapped_bytes(), PAGE_SIZE * 10);
        mem.unmap(0, PAGE_SIZE * 10);
        assert_eq!(mem.mapped_bytes(), 0);
        assert_eq!(mem.peak_mapped_bytes(), PAGE_SIZE * 10);
    }

    #[test]
    fn unmap_keeps_partial_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE * 2);
        // Only the fully covered page is removed.
        mem.unmap(0x1800, PAGE_SIZE + 0x800);
        assert!(mem.is_mapped(0x1000, 1));
        assert!(!mem.is_mapped(0x2000, 1));
    }

    #[test]
    fn unmap_edge_page_contract_survives_data() {
        // The documented contract: pages only partially overlapped by the
        // unmap range stay mapped *and keep their contents* — a page can
        // back more than one allocation, so releasing a sub-page range
        // must not disturb its neighbors.
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE * 3); // pages 1, 2, 3
        mem.write_u64(0x1008, 0xaaaa).unwrap();
        mem.write_u64(0x3ff0, 0xbbbb).unwrap();
        mem.unmap(0x1800, PAGE_SIZE * 2); // fully covers only page 2
        assert!(mem.is_mapped(0x1000, PAGE_SIZE));
        assert!(!mem.is_mapped(0x2000, 1));
        assert!(mem.is_mapped(0x3000, PAGE_SIZE));
        assert_eq!(mem.read_u64(0x1008).unwrap(), 0xaaaa);
        assert_eq!(mem.read_u64(0x3ff0).unwrap(), 0xbbbb);
        // A whole-page-aligned unmap does remove the edge pages.
        mem.unmap(0x1000, PAGE_SIZE);
        assert!(!mem.is_mapped(0x1000, 1));
    }

    #[test]
    fn remapped_page_reads_zero_after_reuse() {
        // Frames recycle through the free list; a recycled frame must not
        // leak the previous mapping's bytes.
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE);
        mem.fill(0x1000, PAGE_SIZE, 0xab).unwrap();
        mem.unmap(0x1000, PAGE_SIZE);
        mem.map(0x9000, PAGE_SIZE); // reuses the freed frame
        assert_eq!(mem.read_u64(0x9000).unwrap(), 0);
        assert_eq!(mem.read_u8(0x9000 + PAGE_SIZE - 1).unwrap(), 0);
    }

    #[test]
    fn tlb_invalidation_on_unmap() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE);
        mem.write_u64(0x1000, 7).unwrap(); // TLB slot now caches page 1
        mem.unmap(0x1000, PAGE_SIZE);
        assert_eq!(
            mem.read_u64(0x1000),
            Err(MemError::Unmapped { addr: 0x1000 })
        );
        // An aliasing page landing in the same TLB slot as page 1.
        let alias_page = (2..).find(|&p| tlb_slot(p) == tlb_slot(1)).unwrap();
        let alias = alias_page * PAGE_SIZE;
        mem.map(alias, PAGE_SIZE);
        mem.write_u64(alias, 9).unwrap();
        assert_eq!(mem.read_u64(alias).unwrap(), 9);
        assert!(mem.read_u64(0x1000).is_err(), "alias must not shadow");
    }

    #[test]
    fn fill_matches_write_bytes_semantics() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE * 2);
        mem.fill(0x1ff0, 0x20, 0x5a).unwrap(); // crosses a page boundary
        assert_eq!(mem.read_u8(0x1ff0).unwrap(), 0x5a);
        assert_eq!(mem.read_u8(0x200f).unwrap(), 0x5a);
        assert_eq!(mem.read_u8(0x2010).unwrap(), 0);
        let s = mem.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_written, 0x20);
        // Unmapped tail: no partial fill, same fault address rule as
        // write_bytes (first page boundary past the mapped prefix).
        let err = mem.fill(0x2ff0, 0x20, 0x77);
        assert_eq!(err, Err(MemError::Unmapped { addr: 0x3000 }));
        assert_eq!(mem.read_u8(0x2ff0).unwrap(), 0, "no partial fill");
    }

    #[test]
    fn lazy_pages_read_zero_and_count_as_mapped() {
        let mut mem = Memory::new();
        mem.map(0x10_0000, PAGE_SIZE * 256); // large region, touch one page
        assert_eq!(mem.mapped_bytes(), PAGE_SIZE * 256);
        assert_eq!(mem.peak_mapped_bytes(), PAGE_SIZE * 256);
        assert!(mem.is_mapped(0x10_0000, PAGE_SIZE * 256));
        mem.write_u64(0x10_8000, 5).unwrap();
        assert_eq!(mem.read_u64(0x10_8000).unwrap(), 5);
        // An untouched lazy page reads zero; unmapping the region and
        // remapping elsewhere still reads zero.
        assert_eq!(mem.read_u64(0x10_0000 + 255 * PAGE_SIZE).unwrap(), 0);
        mem.unmap(0x10_0000, PAGE_SIZE * 256);
        assert!(!mem.is_mapped(0x10_8000, 1));
        mem.map(0x50_0000, PAGE_SIZE);
        assert_eq!(mem.read_u64(0x50_0000).unwrap(), 0);
    }

    #[test]
    fn memsystem_reports_hits_and_misses() {
        let mut sys = MemSystem::with_default_l1();
        sys.mem.map(0x1000, 4096);
        let a1 = sys.write_uint(0x1000, 8, 42).unwrap();
        assert!(!a1.l1_hit, "cold access misses");
        let (v, a2) = sys.read_uint(0x1000, 8).unwrap();
        assert_eq!(v, 42);
        assert!(a2.l1_hit, "second access hits");
    }

    #[test]
    fn stats_count_traffic() {
        let mut mem = Memory::new();
        mem.map(0, 4096);
        mem.write_u64(0, 1).unwrap();
        mem.read_u32(0).unwrap();
        let s = mem.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 4);
    }
}
