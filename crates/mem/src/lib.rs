//! Simulated memory substrate for the In-Fat Pointer reproduction.
//!
//! The paper evaluates on a Digilent Genesys 2 board: a CVA6 core with small
//! L1 caches in front of 1 GB of DDR3. This crate substitutes that physical
//! substrate with:
//!
//! * [`Memory`] — a sparse, page-granular 48-bit address space with explicit
//!   mapping (unmapped accesses model page faults) and resident-size
//!   statistics (used for the paper's `time -v` memory-overhead numbers);
//! * [`Cache`] — a set-associative, write-allocate L1 data-cache model with
//!   LRU replacement, used to reproduce the cache-thrashing analysis in
//!   §5.2.2 (health/ft under the wrapped vs subheap allocators);
//! * [`MemSystem`] — the pairing of the two, which every simulated memory
//!   access flows through so that hit/miss outcomes can feed the cycle model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod layout;

pub use cache::{Cache, CacheConfig, CacheStats};

use std::collections::HashMap;
use std::fmt;

/// Byte size of a simulated page.
pub const PAGE_SIZE: u64 = 4096;

/// Error raised by simulated memory accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access touched an address with no mapped page (a page fault).
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// Access ran past the end of the 48-bit address space.
    OutOfAddressSpace {
        /// The first address past the end of the access.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "page fault at {addr:#x}"),
            MemError::OutOfAddressSpace { addr } => {
                write!(f, "access past end of address space at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Running counters for raw memory traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// A sparse 48-bit simulated memory.
///
/// Pages must be explicitly mapped before access; touching an unmapped page
/// returns [`MemError::Unmapped`], which the machine surfaces as a page
/// fault (notably from metadata fetches inside `promote`). The peak number
/// of mapped bytes stands in for the maximum resident set size that the
/// paper reads from `time -v`.
///
/// # Examples
///
/// ```
/// use ifp_mem::Memory;
///
/// let mut mem = Memory::new();
/// mem.map(0x1000, 4096);
/// mem.write_u64(0x1000, 0xdead_beef).unwrap();
/// assert_eq!(mem.read_u64(0x1000).unwrap(), 0xdead_beef);
/// assert!(mem.read_u8(0x8000_0000).is_err());
/// ```
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8]>>,
    stats: MemStats,
    peak_mapped_pages: usize,
}

impl Memory {
    /// Creates an empty memory with nothing mapped.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    fn page_of(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// Maps (zero-filled) every page overlapping `[base, base + len)`.
    /// Already-mapped pages are left untouched.
    pub fn map(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = Self::page_of(base);
        let last = Self::page_of(base + len - 1);
        for page in first..=last {
            self.pages
                .entry(page)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        }
        self.peak_mapped_pages = self.peak_mapped_pages.max(self.pages.len());
    }

    /// Unmaps every page fully contained in `[base, base + len)`.
    pub fn unmap(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = base.div_ceil(PAGE_SIZE);
        let end = base + len;
        let last_exclusive = end / PAGE_SIZE;
        for page in first..last_exclusive {
            self.pages.remove(&page);
        }
    }

    /// Whether every byte of `[addr, addr + len)` is mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = Self::page_of(addr);
        let last = Self::page_of(addr + len - 1);
        (first..=last).all(|p| self.pages.contains_key(&p))
    }

    /// Currently mapped bytes.
    #[must_use]
    pub fn mapped_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// High-water mark of mapped bytes (the simulated max resident size).
    #[must_use]
    pub fn peak_mapped_bytes(&self) -> u64 {
        self.peak_mapped_pages as u64 * PAGE_SIZE
    }

    /// Raw traffic counters.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    fn check_range(addr: u64, len: u64) -> Result<(), MemError> {
        let end = addr
            .checked_add(len)
            .ok_or(MemError::OutOfAddressSpace { addr })?;
        if end > 1 << 48 {
            return Err(MemError::OutOfAddressSpace { addr: end });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] at the first unmapped byte.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        Self::check_range(addr, buf.len() as u64)?;
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = Self::page_of(a);
            let in_page = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let data = self
                .pages
                .get(&page)
                .ok_or(MemError::Unmapped { addr: a })?;
            buf[off..off + chunk].copy_from_slice(&data[in_page..in_page + chunk]);
            off += chunk;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] at the first unmapped byte.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        Self::check_range(addr, buf.len() as u64)?;
        // Validate the whole range first so a partial write never occurs.
        if !self.is_mapped(addr, buf.len() as u64) {
            let mut a = addr;
            while self.pages.contains_key(&Self::page_of(a)) {
                a = (Self::page_of(a) + 1) * PAGE_SIZE;
            }
            return Err(MemError::Unmapped { addr: a });
        }
        let mut off = 0usize;
        while off < buf.len() {
            let a = addr + off as u64;
            let page = Self::page_of(a);
            let in_page = (a % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            let data = self.pages.get_mut(&page).expect("validated above");
            data[in_page..in_page + chunk].copy_from_slice(&buf[off..off + chunk]);
            off += chunk;
        }
        self.stats.writes += 1;
        self.stats.bytes_written += buf.len() as u64;
        Ok(())
    }

    /// Reads a little-endian `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u8(&mut self, addr: u64) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u16(&mut self, addr: u64) -> Result<u16, MemError> {
        let mut b = [0u8; 2];
        self.read_bytes(addr, &mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u32(&mut self, addr: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u8`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Fills `[addr, addr + len)` with `byte`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) -> Result<(), MemError> {
        let buf = vec![byte; len as usize];
        self.write_bytes(addr, &buf)
    }
}

/// The memory hierarchy every simulated access flows through: sparse
/// backing [`Memory`] fronted by an L1 data [`Cache`].
///
/// Accessors return the value together with the cache outcome so the cycle
/// model can charge a miss penalty. Metadata fetches from the IFP unit use
/// the same path, which is what makes the subheap scheme's metadata sharing
/// visible as a cache-footprint win (paper §5.2.2).
#[derive(Debug)]
pub struct MemSystem {
    /// The backing sparse memory.
    pub mem: Memory,
    /// The L1 data-cache model.
    pub l1d: Cache,
}

/// Outcome of an access through the cache hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Whether the L1 lookup hit.
    pub l1_hit: bool,
}

impl MemSystem {
    /// Creates a memory system with the given L1 configuration.
    #[must_use]
    pub fn new(l1: CacheConfig) -> Self {
        MemSystem {
            mem: Memory::new(),
            l1d: Cache::new(l1),
        }
    }

    /// Creates a memory system with the default (CVA6-like) L1: 32 KiB,
    /// 8-way, 16-byte lines.
    #[must_use]
    pub fn with_default_l1() -> Self {
        MemSystem::new(CacheConfig::default())
    }

    /// Reads `buf.len()` bytes through the cache.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access; the cache is not touched in
    /// that case (the fault aborts the access).
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<Access, MemError> {
        self.mem.read_bytes(addr, buf)?;
        let l1_hit = self.l1d.access_range(addr, buf.len() as u64, false);
        Ok(Access { l1_hit })
    }

    /// Writes `buf` through the cache.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<Access, MemError> {
        self.mem.write_bytes(addr, buf)?;
        let l1_hit = self.l1d.access_range(addr, buf.len() as u64, true);
        Ok(Access { l1_hit })
    }

    /// Reads a little-endian unsigned integer of `size` ∈ {1, 2, 4, 8} bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn read_uint(&mut self, addr: u64, size: u64) -> Result<(u64, Access), MemError> {
        let mut buf = [0u8; 8];
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let acc = self.read(addr, &mut buf[..size as usize])?;
        Ok((u64::from_le_bytes(buf), acc))
    }

    /// Writes the low `size` ∈ {1, 2, 4, 8} bytes of `v`, little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on unmapped access.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, size: u64, v: u64) -> Result<Access, MemError> {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        let bytes = v.to_le_bytes();
        self.write(addr, &bytes[..size as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_is_a_page_fault() {
        let mut mem = Memory::new();
        assert_eq!(
            mem.read_u8(0x5000),
            Err(MemError::Unmapped { addr: 0x5000 })
        );
    }

    #[test]
    fn map_write_read_roundtrip() {
        let mut mem = Memory::new();
        mem.map(0x1000, 8192);
        for (i, v) in [(0x1000u64, 0x11u8), (0x1fff, 0x22), (0x2abc, 0x33)] {
            mem.write_u8(i, v).unwrap();
            assert_eq!(mem.read_u8(i).unwrap(), v);
        }
    }

    #[test]
    fn cross_page_access_works() {
        let mut mem = Memory::new();
        mem.map(0x1000, 8192);
        mem.write_u64(0x1ffc, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(mem.read_u64(0x1ffc).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn cross_page_fault_does_not_partially_write() {
        let mut mem = Memory::new();
        mem.map(0x1000, 4096); // only one page
        let before = mem.read_u32(0x1ffc).unwrap();
        assert!(mem.write_u64(0x1ffc, u64::MAX).is_err());
        assert_eq!(mem.read_u32(0x1ffc).unwrap(), before, "no partial write");
    }

    #[test]
    fn peak_mapped_tracks_high_water_mark() {
        let mut mem = Memory::new();
        mem.map(0, PAGE_SIZE * 10);
        assert_eq!(mem.mapped_bytes(), PAGE_SIZE * 10);
        mem.unmap(0, PAGE_SIZE * 10);
        assert_eq!(mem.mapped_bytes(), 0);
        assert_eq!(mem.peak_mapped_bytes(), PAGE_SIZE * 10);
    }

    #[test]
    fn unmap_keeps_partial_pages() {
        let mut mem = Memory::new();
        mem.map(0x1000, PAGE_SIZE * 2);
        // Only the fully covered page is removed.
        mem.unmap(0x1800, PAGE_SIZE + 0x800);
        assert!(mem.is_mapped(0x1000, 1));
        assert!(!mem.is_mapped(0x2000, 1));
    }

    #[test]
    fn memsystem_reports_hits_and_misses() {
        let mut sys = MemSystem::with_default_l1();
        sys.mem.map(0x1000, 4096);
        let a1 = sys.write_uint(0x1000, 8, 42).unwrap();
        assert!(!a1.l1_hit, "cold access misses");
        let (v, a2) = sys.read_uint(0x1000, 8).unwrap();
        assert_eq!(v, 42);
        assert!(a2.l1_hit, "second access hits");
    }

    #[test]
    fn stats_count_traffic() {
        let mut mem = Memory::new();
        mem.map(0, 4096);
        mem.write_u64(0, 1).unwrap();
        mem.read_u32(0).unwrap();
        let s = mem.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 4);
    }
}
