//! Set-associative L1 data-cache model with LRU replacement.
//!
//! The model tracks tags only (data lives in [`crate::Memory`]); its job is
//! to classify each access as hit or miss so the cycle model can charge the
//! appropriate penalty and so the §5.2.2 cache-miss analysis can be
//! reproduced. It is a write-allocate, write-back design like the CVA6 L1.

use std::fmt;

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Bytes per cache line. Must be a power of two.
    pub line_size: u64,
    /// Number of sets. Must be a power of two.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.line_size * self.sets as u64 * self.ways as u64
    }
}

impl Default for CacheConfig {
    /// A CVA6-like L1 data cache: 32 KiB, 8-way, 16-byte lines.
    fn default() -> Self {
        CacheConfig {
            line_size: 16,
            sets: 256,
            ways: 8,
        }
    }
}

/// Hit/miss counters for a [`Cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    /// A line is valid iff its epoch equals the cache's current epoch.
    /// Epoch-based validity makes both construction (from the pooled
    /// buffer) and [`Cache::flush`] O(1) instead of O(lines).
    epoch: u64,
    dirty: bool,
    tag: u64,
    /// Monotonic timestamp of the last touch, for LRU.
    last_use: u64,
}

thread_local! {
    /// Recycled line buffers. Allocating and zero-filling the line array
    /// dominates `Cache::new` (a 32 KiB model is 2048 lines), which in
    /// turn dominates short simulated runs that construct a fresh VM per
    /// case. Buffers are returned on drop together with their epoch
    /// high-water mark; a reusing cache starts one epoch above it, so
    /// every stale line is invalid without being cleared.
    static LINE_POOL: std::cell::RefCell<Vec<(u64, Vec<Line>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Most distinct geometries a thread's pool holds buffers for (the cache
/// sweep uses seven sizes; beyond that, buffers are simply freed).
const LINE_POOL_CAP: usize = 8;

/// A set-associative cache tracking line residency.
///
/// # Examples
///
/// ```
/// use ifp_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::default());
/// assert!(!c.access(0x1000, false)); // cold miss
/// assert!(c.access(0x1000, false));  // now resident
/// ```
#[derive(Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `log2(line_size)`; the geometry is asserted to be a power of two.
    line_shift: u32,
    /// `log2(sets)`.
    sets_shift: u32,
    lines: Vec<Line>,
    epoch: u64,
    stats: CacheStats,
    clock: u64,
}

impl Drop for Cache {
    fn drop(&mut self) {
        let lines = std::mem::take(&mut self.lines);
        if lines.is_empty() {
            return;
        }
        let epoch = self.epoch;
        let _ = LINE_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < LINE_POOL_CAP {
                pool.push((epoch, lines));
            }
        });
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` or `sets` is not a power of two, or `ways` is 0.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.sets.is_power_of_two(),
            "set count must be a power of two"
        );
        assert!(config.ways > 0, "cache must have at least one way");
        let n = config.sets * config.ways;
        // Reuse a pooled buffer of the right size when one is available;
        // starting above its epoch high-water mark invalidates every
        // stale line without touching the array.
        let (epoch, lines) = LINE_POOL
            .try_with(|pool| {
                let mut pool = pool.borrow_mut();
                let i = pool.iter().position(|(_, buf)| buf.len() == n)?;
                let (hwm, buf) = pool.swap_remove(i);
                Some((hwm + 1, buf))
            })
            .ok()
            .flatten()
            .unwrap_or_else(|| (1, vec![Line::default(); n]));
        Cache {
            config,
            line_shift: config.line_size.trailing_zeros(),
            sets_shift: config.sets.trailing_zeros(),
            lines,
            epoch,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and (optionally kept) statistics.
    pub fn flush(&mut self) {
        // Bumping the epoch orphans every line at once.
        self.epoch += 1;
    }

    /// Resets the hit/miss counters without touching residency.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Returns the cache to its just-constructed state: every line
    /// invalid, counters zeroed, LRU clock rewound. Equivalent to
    /// `Cache::new(self.config())` but without releasing the line buffer
    /// to the pool and re-acquiring it — the basis of pooled-VM reuse.
    ///
    /// Victim selection after a reset is identical to a fresh cache:
    /// stale lines carry old `last_use` values, but an invalid line
    /// (epoch mismatch) always keys to 0 in the LRU comparison, so the
    /// leftover values are never consulted.
    pub fn reset(&mut self) {
        self.flush();
        self.reset_stats();
        self.clock = 0;
    }

    /// Performs one line-granular access; returns `true` on hit.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr as usize) & (self.config.sets - 1);
        let tag = line_addr >> self.sets_shift;
        let base = set * self.config.ways;
        let epoch = self.epoch;
        let ways = &mut self.lines[base..base + self.config.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.epoch == epoch && l.tag == tag) {
            line.last_use = self.clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Victim: an invalid way if any, else LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.epoch == epoch { l.last_use + 1 } else { 0 })
            .expect("ways > 0");
        if victim.epoch == epoch && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            epoch,
            dirty: is_write,
            tag,
            last_use: self.clock,
        };
        false
    }

    /// Accesses every line overlapped by `[addr, addr + len)`; returns
    /// `true` only if all of them hit.
    pub fn access_range(&mut self, addr: u64, len: u64, is_write: bool) -> bool {
        if len == 0 {
            return true;
        }
        let first = addr >> self.line_shift;
        let last = (addr + len - 1) >> self.line_shift;
        let mut all_hit = true;
        for line in first..=last {
            all_hit &= self.access(line << self.line_shift, is_write);
        }
        all_hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig {
            line_size: 16,
            sets: 2,
            ways: 2,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x10f, false), "same line");
        assert!(!c.access(0x110, false), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: line addrs 0, 2, 4 (even line numbers map to set 0).
        let (a, b, new) = (0u64, 2 * 16, 4 * 16);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // touch A; B is now LRU
        c.access(new, false); // C evicts B
        assert!(c.access(a, false), "A still resident");
        assert!(!c.access(b, false), "B was evicted");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = tiny();
        c.access(0, true); // dirty A
        c.access(2 * 16, false);
        c.access(4 * 16, false); // evicts dirty A
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn range_access_spans_lines() {
        let mut c = tiny();
        assert!(!c.access_range(0x8, 16, false), "spans two cold lines");
        assert!(c.access_range(0x8, 16, false), "both now resident");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 64-byte capacity
        for round in 0..4 {
            for line in 0..8u64 {
                let hit = c.access(line * 16, false);
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        // 8 lines cycling through 4 line slots with LRU never hit.
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x100, false);
        c.flush();
        assert!(!c.access(0x100, false));
    }

    #[test]
    fn default_config_is_32kib() {
        assert_eq!(CacheConfig::default().capacity(), 32 * 1024);
    }
}
