//! Conventional address-space layout for the simulated process.
//!
//! The In-Fat Pointer machine runs "user" programs in a 48-bit address
//! space. These segment constants are a convention shared by the stack
//! allocator, the heap allocators, the global-data emitter and the global
//! metadata table; nothing in the memory model enforces them.

/// Base of the global data segment (instrumented globals + layout tables).
pub const GLOBALS_BASE: u64 = 0x0000_1000_0000;
/// Size reserved for the global data segment.
pub const GLOBALS_SIZE: u64 = 0x0000_1000_0000;

/// Base of the global metadata table used by the global table scheme.
pub const GLOBAL_TABLE_BASE: u64 = 0x0000_2000_0000;
/// Size reserved for the global metadata table (4096 rows x 16 B, page
/// rounded up with room to spare).
pub const GLOBAL_TABLE_SIZE: u64 = 0x0001_0000;

/// Base of the heap segment.
pub const HEAP_BASE: u64 = 0x0000_4000_0000;
/// Size reserved for the heap segment (768 MiB, in the spirit of the 1 GB
/// evaluation board).
pub const HEAP_SIZE: u64 = 0x0000_3000_0000;

/// Top of the downward-growing stack (exclusive).
pub const STACK_TOP: u64 = 0x0000_8000_0000;
/// Maximum stack size.
pub const STACK_SIZE: u64 = 0x0000_0100_0000;

/// Whether `addr` falls in the heap segment.
#[must_use]
pub fn is_heap(addr: u64) -> bool {
    (HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr)
}

/// Whether `addr` falls in the stack segment.
#[must_use]
pub fn is_stack(addr: u64) -> bool {
    (STACK_TOP - STACK_SIZE..STACK_TOP).contains(&addr)
}

/// Whether `addr` falls in the global data segment.
#[must_use]
pub fn is_globals(addr: u64) -> bool {
    (GLOBALS_BASE..GLOBALS_BASE + GLOBALS_SIZE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_do_not_overlap() {
        let segs = [
            (GLOBALS_BASE, GLOBALS_BASE + GLOBALS_SIZE),
            (GLOBAL_TABLE_BASE, GLOBAL_TABLE_BASE + GLOBAL_TABLE_SIZE),
            (HEAP_BASE, HEAP_BASE + HEAP_SIZE),
            (STACK_TOP - STACK_SIZE, STACK_TOP),
        ];
        for (i, a) in segs.iter().enumerate() {
            for b in segs.iter().skip(i + 1) {
                assert!(a.1 <= b.0 || b.1 <= a.0, "segments {a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    fn classifiers_are_disjoint() {
        assert!(is_heap(HEAP_BASE));
        assert!(!is_stack(HEAP_BASE));
        assert!(is_stack(STACK_TOP - 8));
        assert!(is_globals(GLOBALS_BASE));
    }
}
