//! ARM MTE-style memory tagging: every 16-byte granule carries a 4-bit
//! tag; a pointer carries the tag of its allocation, and a dereference
//! whose pointer tag mismatches the memory tag traps. Detection is
//! probabilistic: 4 bits give a 1-in-16 chance that an out-of-bounds
//! access lands on memory that happens to share the tag.

use crate::{Defense, PtrMeta};
use std::collections::HashMap;

/// Bytes per tag granule.
pub const GRANULE: u64 = 16;
/// Tag width in bits.
pub const TAG_BITS: u32 = 4;

/// The MTE-style defense.
#[derive(Debug)]
pub struct Mte {
    tags: HashMap<u64, u8>,
    rng: u64,
}

impl Mte {
    /// Creates an instance with a deterministic tag-assignment seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Mte {
            tags: HashMap::new(),
            rng: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1),
        }
    }

    fn next_tag(&mut self) -> u8 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.rng >> 33) & ((1 << TAG_BITS) - 1)) as u8
    }

    fn tag_at(&self, addr: u64) -> u8 {
        self.tags.get(&(addr / GRANULE)).copied().unwrap_or(0)
    }

    fn set_tags(&mut self, base: u64, len: u64, tag: u8) {
        for g in (base / GRANULE)..((base + len).div_ceil(GRANULE)) {
            self.tags.insert(g, tag);
        }
    }
}

impl Default for Mte {
    fn default() -> Self {
        Mte::with_seed(7)
    }
}

impl Defense for Mte {
    fn name(&self) -> &'static str {
        "MTE-style (tagged memory)"
    }

    fn on_alloc(&mut self, base: u64, size: u64) -> PtrMeta {
        let tag = self.next_tag();
        self.set_tags(base, size, tag);
        PtrMeta::Tag(tag)
    }

    fn on_free(&mut self, base: u64, size: u64) {
        // Retagging on free gives (probabilistic) use-after-free detection.
        let tag = self.next_tag();
        self.set_tags(base, size, tag);
    }

    fn on_subobject(&mut self, parent: PtrMeta, _field_base: u64, _field_size: u64) -> PtrMeta {
        // Subobjects share the object tag: no intra-object detection.
        parent
    }

    fn check(&self, meta: PtrMeta, addr: u64, size: u64) -> bool {
        match meta {
            PtrMeta::Tag(t) => {
                let last = addr + size.max(1) - 1;
                (addr / GRANULE..=last / GRANULE).all(|g| self.tag_at(g * GRANULE) == t)
            }
            _ => true,
        }
    }

    fn check_free(&self, meta: PtrMeta, base: u64) -> bool {
        // A free presents the pointer's tag against the memory tag; after
        // the first free retagged the granules, a stale tag mismatches
        // with probability 15/16 — double-free detection inherits the
        // same collision odds as every other MTE check.
        match meta {
            PtrMeta::Tag(t) => self.tag_at(base) == t,
            _ => true,
        }
    }

    fn object_granularity(&self) -> &'static str {
        "probabilistic (1/16 escape)"
    }

    fn subobject_granularity(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_tag_passes_mismatched_traps() {
        let mut m = Mte::with_seed(1);
        let pa = m.on_alloc(0x1000, 64);
        let _pb = m.on_alloc(0x2000, 64);
        assert!(m.check(pa, 0x1000, 16));
        // Untagged memory (tag 0) usually mismatches.
        let PtrMeta::Tag(t) = pa else { panic!() };
        if t != 0 {
            assert!(!m.check(pa, 0x5000, 1));
        }
    }

    #[test]
    fn collision_probability_is_about_one_sixteenth() {
        let mut collisions = 0u32;
        let trials = 512u32;
        for seed in 0..u64::from(trials) {
            let mut m = Mte::with_seed(seed);
            let pa = m.on_alloc(0x1000, 64);
            let _pb = m.on_alloc(0x1040, 64); // adjacent
            if m.check(pa, 0x1040, 1) {
                collisions += 1;
            }
        }
        let rate = f64::from(collisions) / f64::from(trials);
        assert!((0.02..0.14).contains(&rate), "collision rate {rate}");
    }

    #[test]
    fn double_free_detection_shares_the_tag_collision_odds() {
        let mut caught = 0;
        for seed in 0..64 {
            let mut m = Mte::with_seed(seed);
            let p = m.on_alloc(0x1000, 64);
            assert!(m.check_free(p, 0x1000), "first free always passes");
            m.on_free(0x1000, 64);
            if !m.check_free(p, 0x1000) {
                caught += 1;
            }
        }
        assert!(caught > 48, "most double frees trap ({caught}/64)");
        assert!(caught < 64, "tag reuse leaks some ({caught}/64)");
    }

    #[test]
    fn retag_on_free_catches_stale_pointers_probabilistically() {
        let mut caught = 0;
        for seed in 0..64 {
            let mut m = Mte::with_seed(seed);
            let p = m.on_alloc(0x1000, 64);
            m.on_free(0x1000, 64);
            if !m.check(p, 0x1000, 1) {
                caught += 1;
            }
        }
        assert!(caught > 48, "most stale uses trap ({caught}/64)");
    }
}
