//! AddressSanitizer-style memory-based defense: one shadow byte per eight
//! application bytes marks valid memory; allocations are surrounded by
//! poisoned redzones. Detection is partial by construction — an access
//! that jumps past the redzone into another live object is invisible.
//!
//! Shadow encoding follows real ASan: `0` means the whole granule is
//! addressable, `1..=7` means only the first k bytes are (an object
//! whose size is not a multiple of the granule ends mid-granule), and
//! high marks denote redzone/freed poison. Without the partial
//! encoding, poisoning the right redzone would falsely cover live
//! object bytes sharing the tail granule — a false-positive bug the
//! differential fuzzer flags immediately on unaligned sizes.

use crate::{Defense, PtrMeta};
use std::collections::{HashMap, VecDeque};

/// Redzone size on each side of an allocation.
pub const REDZONE: u64 = 16;
/// Application bytes per shadow byte.
const GRAIN: u64 = 8;

/// Shadow byte values. `1..=7` are partial-granule byte counts.
const VALID: u8 = 0;
const REDZONE_MARK: u8 = 0xfa;
const FREED_MARK: u8 = 0xfd;

/// The ASan-style defense.
#[derive(Debug, Default)]
pub struct Asan {
    shadow: HashMap<u64, u8>,
    /// Freed allocations still under poison, oldest first.
    quarantine: VecDeque<(u64, u64)>,
    quarantine_bytes: u64,
    /// Quarantine byte budget; `None` keeps freed memory poisoned
    /// forever (the idealized model the spatial comparison uses).
    quarantine_budget: Option<u64>,
}

impl Asan {
    /// Creates an empty instance (all memory "valid", matching ASan's
    /// default for unpoisoned regions). Freed memory stays poisoned
    /// forever; see [`Asan::with_quarantine`] for the bounded model.
    #[must_use]
    pub fn new() -> Self {
        Asan::default()
    }

    /// Creates an instance whose freed-memory poison is bounded by a
    /// quarantine budget, real-ASan style: when the total of freed bytes
    /// exceeds `bytes`, the oldest freed chunks leave quarantine and
    /// their memory becomes reusable (shadow valid again) — a stale
    /// pointer dereferenced after eviction is *missed*. This is the
    /// mechanism behind ASan's probabilistic use-after-free window.
    #[must_use]
    pub fn with_quarantine(bytes: u64) -> Self {
        Asan {
            quarantine_budget: Some(bytes),
            ..Asan::default()
        }
    }

    fn poison(&mut self, base: u64, len: u64, mark: u8) {
        for g in (base / GRAIN)..((base + len).div_ceil(GRAIN)) {
            self.shadow.insert(g, mark);
        }
    }

    /// Marks `[base, base+len)` addressable. `base` must be
    /// granule-aligned (allocator bases are 16-byte aligned); a partial
    /// tail granule records its addressable byte count, real-ASan style.
    fn unpoison(&mut self, base: u64, len: u64) {
        debug_assert_eq!(base % GRAIN, 0, "unaligned object base");
        let end = base + len;
        for g in (base / GRAIN)..(end / GRAIN) {
            self.shadow.insert(g, VALID);
        }
        let rem = end % GRAIN;
        if rem != 0 {
            self.shadow.insert(end / GRAIN, rem as u8);
        }
    }

    fn shadow_at(&self, addr: u64) -> u8 {
        self.shadow.get(&(addr / GRAIN)).copied().unwrap_or(VALID)
    }

    /// Whether a single byte address is addressable under the shadow.
    fn byte_ok(&self, addr: u64) -> bool {
        match self.shadow_at(addr) {
            VALID => true,
            s if u64::from(s) < GRAIN => (addr % GRAIN) < u64::from(s),
            _ => false,
        }
    }
}

impl Defense for Asan {
    fn name(&self) -> &'static str {
        "ASan-style (memory-based)"
    }

    fn on_alloc(&mut self, base: u64, size: u64) -> PtrMeta {
        // Left and right redzones around the object. The right redzone
        // starts at the next granule boundary: a partial tail granule is
        // already guarded by its byte count, and poisoning it whole
        // would falsely cover live object bytes.
        self.poison(base.saturating_sub(REDZONE), REDZONE, REDZONE_MARK);
        self.unpoison(base, size);
        self.poison((base + size).next_multiple_of(GRAIN), REDZONE, REDZONE_MARK);
        PtrMeta::None
    }

    fn on_free(&mut self, base: u64, size: u64) {
        // Quarantine: freed memory stays poisoned until (and unless) the
        // chunk is evicted to make room under the byte budget.
        self.poison(base, size, FREED_MARK);
        if let Some(budget) = self.quarantine_budget {
            self.quarantine.push_back((base, size));
            self.quarantine_bytes += size;
            while self.quarantine_bytes > budget {
                let Some((b, s)) = self.quarantine.pop_front() else {
                    break;
                };
                self.quarantine_bytes -= s;
                // Eviction returns the chunk to the allocator: its
                // memory is addressable again and stale uses go unseen.
                self.unpoison(b, s);
            }
        }
    }

    fn on_subobject(&mut self, parent: PtrMeta, _field_base: u64, _field_size: u64) -> PtrMeta {
        // No per-pointer state: subobjects are indistinguishable.
        parent
    }

    fn check(&self, _meta: PtrMeta, addr: u64, size: u64) -> bool {
        (addr..addr + size).all(|a| self.byte_ok(a))
    }

    fn check_free(&self, _meta: PtrMeta, base: u64) -> bool {
        // A double free hands back memory whose shadow still carries the
        // freed mark (unless quarantine eviction already cleared it).
        self.shadow_at(base) != FREED_MARK
    }

    fn object_granularity(&self) -> &'static str {
        "partial (redzones)"
    }

    fn subobject_granularity(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redzones_catch_adjacent_overflow() {
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 64);
        assert!(a.check(m, 0x1000, 64));
        assert!(!a.check(m, 0x1040, 1), "right redzone");
        assert!(!a.check(m, 0xff8, 1), "left redzone");
    }

    #[test]
    fn far_accesses_into_other_objects_are_missed() {
        let mut a = Asan::new();
        let m1 = a.on_alloc(0x1000, 64);
        let _m2 = a.on_alloc(0x2000, 64);
        assert!(a.check(m1, 0x2020, 1), "valid memory of another object");
    }

    #[test]
    fn partial_tail_granule_keeps_object_bytes_valid() {
        // A 20-byte object ends mid-granule: bytes 16..20 share a
        // granule with the first redzone bytes. In-bounds accesses to
        // them must pass; the first byte past the end must fail.
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 20);
        assert!(a.check(m, 0x1000, 20), "whole object in bounds");
        assert!(a.check(m, 0x1013, 1), "last object byte");
        assert!(!a.check(m, 0x1014, 1), "first byte past the end");
        assert!(!a.check(m, 0x1010, 8), "access straddling the end");
        assert!(!a.check(m, 0x1018, 1), "redzone proper");
    }

    #[test]
    fn freed_memory_stays_poisoned() {
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 64);
        a.on_free(0x1000, 64);
        assert!(
            !a.check(m, 0x1000, 1),
            "use after free caught by quarantine"
        );
    }

    #[test]
    fn double_free_is_flagged_by_the_freed_shadow() {
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 64);
        assert!(a.check_free(m, 0x1000), "first free is legitimate");
        a.on_free(0x1000, 64);
        assert!(!a.check_free(m, 0x1000), "second free hits freed shadow");
    }

    #[test]
    fn quarantine_eviction_reopens_the_uaf_window() {
        // 128-byte budget: freeing two further 64-byte chunks evicts the
        // first, whose memory becomes addressable again — the stale use
        // is missed, exactly the bounded-quarantine escape.
        let mut a = Asan::with_quarantine(128);
        let m = a.on_alloc(0x1000, 64);
        a.on_alloc(0x2000, 64);
        a.on_alloc(0x3000, 64);
        a.on_free(0x1000, 64);
        assert!(!a.check(m, 0x1000, 1), "still quarantined");
        a.on_free(0x2000, 64);
        assert!(!a.check(m, 0x1000, 1), "budget not yet exceeded");
        a.on_free(0x3000, 64);
        assert!(a.check(m, 0x1000, 1), "evicted: stale use missed");
        assert!(a.check_free(m, 0x1000), "evicted: double free missed too");
    }
}
