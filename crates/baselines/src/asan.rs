//! AddressSanitizer-style memory-based defense: one shadow byte per eight
//! application bytes marks valid memory; allocations are surrounded by
//! poisoned redzones. Detection is partial by construction — an access
//! that jumps past the redzone into another live object is invisible.

use crate::{Defense, PtrMeta};
use std::collections::HashMap;

/// Redzone size on each side of an allocation.
pub const REDZONE: u64 = 16;
/// Application bytes per shadow byte.
const GRAIN: u64 = 8;

/// Shadow byte values.
const VALID: u8 = 0;
const REDZONE_MARK: u8 = 0xfa;
const FREED_MARK: u8 = 0xfd;

/// The ASan-style defense.
#[derive(Debug, Default)]
pub struct Asan {
    shadow: HashMap<u64, u8>,
}

impl Asan {
    /// Creates an empty instance (all memory "valid", matching ASan's
    /// default for unpoisoned regions).
    #[must_use]
    pub fn new() -> Self {
        Asan::default()
    }

    fn poison(&mut self, base: u64, len: u64, mark: u8) {
        for g in (base / GRAIN)..((base + len).div_ceil(GRAIN)) {
            self.shadow.insert(g, mark);
        }
    }

    fn unpoison(&mut self, base: u64, len: u64) {
        for g in (base / GRAIN)..((base + len).div_ceil(GRAIN)) {
            self.shadow.insert(g, VALID);
        }
    }

    fn shadow_at(&self, addr: u64) -> u8 {
        self.shadow.get(&(addr / GRAIN)).copied().unwrap_or(VALID)
    }
}

impl Defense for Asan {
    fn name(&self) -> &'static str {
        "ASan-style (memory-based)"
    }

    fn on_alloc(&mut self, base: u64, size: u64) -> PtrMeta {
        // Left and right redzones around the object.
        self.poison(base.saturating_sub(REDZONE), REDZONE, REDZONE_MARK);
        self.unpoison(base, size);
        self.poison(base + size, REDZONE, REDZONE_MARK);
        PtrMeta::None
    }

    fn on_free(&mut self, base: u64, size: u64) {
        // Quarantine: freed memory stays poisoned.
        self.poison(base, size, FREED_MARK);
    }

    fn on_subobject(&mut self, parent: PtrMeta, _field_base: u64, _field_size: u64) -> PtrMeta {
        // No per-pointer state: subobjects are indistinguishable.
        parent
    }

    fn check(&self, _meta: PtrMeta, addr: u64, size: u64) -> bool {
        (addr..addr + size).all(|a| self.shadow_at(a) == VALID)
    }

    fn object_granularity(&self) -> &'static str {
        "partial (redzones)"
    }

    fn subobject_granularity(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redzones_catch_adjacent_overflow() {
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 64);
        assert!(a.check(m, 0x1000, 64));
        assert!(!a.check(m, 0x1040, 1), "right redzone");
        assert!(!a.check(m, 0xff8, 1), "left redzone");
    }

    #[test]
    fn far_accesses_into_other_objects_are_missed() {
        let mut a = Asan::new();
        let m1 = a.on_alloc(0x1000, 64);
        let _m2 = a.on_alloc(0x2000, 64);
        assert!(a.check(m1, 0x2020, 1), "valid memory of another object");
    }

    #[test]
    fn freed_memory_stays_poisoned() {
        let mut a = Asan::new();
        let m = a.on_alloc(0x1000, 64);
        a.on_free(0x1000, 64);
        assert!(
            !a.check(m, 0x1000, 1),
            "use after free caught by quarantine"
        );
    }
}
