//! Comparator defenses (the baseline schemes of the paper's Table 1),
//! implemented with their real mechanics over the simulated memory so the
//! protection-granularity comparison can be run empirically instead of
//! quoted.
//!
//! Three families are represented:
//!
//! * [`softbound`] — a pointer-based scheme with full per-pointer bounds
//!   kept in a disjoint metadata space (SoftBound/HardBound lineage):
//!   subobject-granular, but pays metadata traffic on every pointer
//!   load/store;
//! * [`asan`] — a memory-based scheme (AddressSanitizer lineage):
//!   shadow memory marks redzones around objects, detection is *partial*
//!   (an access that jumps over the redzone lands in valid memory and is
//!   missed);
//! * [`mte`] — a memory-tagging scheme (ARM MTE lineage): 4-bit tags on
//!   16-byte granules matched against the pointer tag, detection is
//!   *probabilistic* (1 in 16 adjacent objects share a tag).
//!
//! The common [`Defense`] trait narrows each scheme to the operations the
//! granularity experiment needs; see `benches`/`tables` in `ifp-bench`
//! for the matrix this feeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asan;
pub mod mte;
pub mod softbound;
pub mod temporal;

pub use asan::Asan;
pub use mte::Mte;
pub use softbound::SoftBound;
pub use temporal::{temporal_row, TemporalRow};

use ifp_tag::Bounds;

/// Opaque per-pointer metadata a defense associates with a pointer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrMeta {
    /// No per-pointer state (memory-based schemes).
    None,
    /// Bounds carried with the pointer (pointer-based schemes).
    Bounds(Bounds),
    /// A small tag carried in the pointer's top bits (MTE-style).
    Tag(u8),
}

/// The operations the granularity comparison drives.
///
/// A defense observes allocations, pointer derivations (including taking
/// the address of a subobject) and checks accesses. `check` returns
/// whether the access is *allowed* — a spatial violation is detected when
/// it returns `false`.
pub trait Defense {
    /// Scheme name for the comparison table.
    fn name(&self) -> &'static str;

    /// Observes an allocation and returns the metadata for a pointer to
    /// its base.
    fn on_alloc(&mut self, base: u64, size: u64) -> PtrMeta;

    /// Observes deallocation.
    fn on_free(&mut self, base: u64, size: u64);

    /// Observes derivation of a subobject pointer (`&obj->field`).
    /// Schemes without subobject granularity return the parent metadata.
    fn on_subobject(&mut self, parent: PtrMeta, field_base: u64, field_size: u64) -> PtrMeta;

    /// Checks a `size`-byte access at `addr` through a pointer carrying
    /// `meta`.
    fn check(&self, meta: PtrMeta, addr: u64, size: u64) -> bool;

    /// Checks a `free` of the allocation at `base` through a pointer
    /// carrying `meta`. Returns whether the free is allowed — `false`
    /// flags a temporal violation (double free). Defaults to allowed:
    /// schemes without free-time state cannot object.
    fn check_free(&self, meta: PtrMeta, base: u64) -> bool {
        let _ = (meta, base);
        true
    }

    /// Whether detection of *object* overflow is exact, for the table.
    fn object_granularity(&self) -> &'static str;

    /// Whether detection of *subobject* overflow is provided.
    fn subobject_granularity(&self) -> bool;
}

/// The detection outcome matrix of one scheme over the standard scenario
/// set (used by the Table 1 empirical bench).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectionRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// In-bounds access allowed.
    pub in_bounds_ok: bool,
    /// Overflow by one element into the adjacent region detected.
    pub adjacent_overflow: bool,
    /// Far overflow that skips guard regions detected.
    pub far_overflow: bool,
    /// Intra-object (subobject) overflow detected.
    pub intra_object: bool,
}

/// Drives a defense through the standard scenario set:
/// two adjacent 64-byte objects at `0x1000` and (after whatever padding
/// the scheme inserts) the next allocation; the first object is a struct
/// `{ buf: [u8; 32], sensitive: [u8; 32] }`.
pub fn detection_row<D: Defense>(d: &mut D) -> DetectionRow {
    let a = 0x1000u64;
    let meta_a = d.on_alloc(a, 64);
    // The second allocation: schemes that pad (redzones) place it further
    // out; we ask them to allocate and use their own placement.
    let b = 0x2000u64;
    let meta_b = d.on_alloc(b, 64);
    let _ = meta_b;

    let in_bounds_ok = d.check(meta_a, a + 63, 1);
    // Overflow by one byte past object A.
    let adjacent_overflow = !d.check(meta_a, a + 64, 1);
    // Far overflow: land in the middle of object B's valid memory.
    let far_overflow = !d.check(meta_a, b + 32, 1);
    // Subobject: a pointer to A.buf overflowing into A.sensitive.
    let sub = d.on_subobject(meta_a, a, 32);
    let intra_object = !d.check(sub, a + 32, 1);

    DetectionRow {
        scheme: d.name(),
        in_bounds_ok,
        adjacent_overflow,
        far_overflow,
        intra_object,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softbound_detects_everything() {
        let row = detection_row(&mut SoftBound::new());
        assert!(row.in_bounds_ok);
        assert!(row.adjacent_overflow);
        assert!(row.far_overflow);
        assert!(
            row.intra_object,
            "pointer-based schemes narrow to subobjects"
        );
    }

    #[test]
    fn asan_detection_is_partial() {
        let row = detection_row(&mut Asan::new());
        assert!(row.in_bounds_ok);
        assert!(row.adjacent_overflow, "redzone catches the adjacent case");
        assert!(!row.far_overflow, "jumping the redzone is missed");
        assert!(!row.intra_object, "no subobject granularity");
    }

    #[test]
    fn mte_detection_is_probabilistic_and_object_grained() {
        // With 4-bit tags, some seed makes adjacent objects collide.
        let mut collided = false;
        let mut detected = false;
        for seed in 0..64 {
            let row = detection_row(&mut Mte::with_seed(seed));
            assert!(row.in_bounds_ok);
            assert!(!row.intra_object);
            if row.far_overflow {
                detected = true;
            } else {
                collided = true;
            }
        }
        assert!(detected, "most seeds detect");
        assert!(collided, "some seeds collide: detection is probabilistic");
    }
}
