//! Analytic temporal-safety models of the comparator defenses.
//!
//! The spatial comparison in this crate drives each defense empirically;
//! the temporal comparison additionally needs *closed-form* expectations
//! so the differential fuzzer can judge a run without trusting the
//! implementation under test:
//!
//! * **ASan** detects use-after-free and double free deterministically
//!   *while the freed chunk sits in quarantine*; once the byte budget
//!   evicts it, both are missed ([`asan_uaf_detected`]).
//! * **MTE** retags on free, so a stale pointer's tag mismatches with
//!   probability 15/16 per check — use-after-free and double-free
//!   detection are both probabilistic ([`MTE_STALE_CATCH_PROBABILITY`]),
//!   and the tag can recur after enough intervening retags
//!   ([`mte_tag_reuse_probability`]).
//! * **SoftBound** (and pointer-bounds schemes generally) keep no
//!   free-time state at all: spatially in-bounds stale accesses pass.
//!
//! [`temporal_row`] drives any [`Defense`] through the standard
//! alloc→free→stale-use→double-free scenario and reports what it caught,
//! mirroring [`crate::detection_row`] for the spatial table.

use crate::Defense;

/// Probability that one MTE check of a stale pointer traps: the free
/// retagged the granules, and 15 of the 16 possible new tags differ from
/// the one the pointer still carries.
pub const MTE_STALE_CATCH_PROBABILITY: f64 = 15.0 / 16.0;

/// Probability that a stale pointer's tag has come back around after
/// `retags` further retag events on its memory (each drawn uniformly
/// from the 16 tags): `1 - (15/16)^retags` that at least one recurrence
/// happened at the final state is not what a single check sees — the
/// check compares against the *current* tag only, so the reuse
/// probability per check stays `1/16` regardless of history.
#[must_use]
pub fn mte_tag_reuse_probability(retags: u32) -> f64 {
    if retags == 0 {
        0.0
    } else {
        1.0 / 16.0
    }
}

/// Whether the ASan model detects a stale access to a freed chunk of
/// `size` bytes, given the quarantine byte budget (`None` = unbounded)
/// and how many bytes of *other* chunks were freed after it. Detection
/// holds exactly while the chunk is still quarantined: it is evicted
/// once the younger frees alone exceed the budget's remaining room.
#[must_use]
pub fn asan_uaf_detected(budget: Option<u64>, size: u64, freed_after: u64) -> bool {
    match budget {
        None => true,
        Some(b) => size + freed_after <= b,
    }
}

/// What one defense caught on the standard temporal scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemporalRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Stale dereference after free detected.
    pub use_after_free: bool,
    /// Second free of the same allocation detected.
    pub double_free: bool,
}

/// Drives a defense through alloc → free → stale use → double free and
/// reports the detections (the temporal companion of
/// [`crate::detection_row`]).
pub fn temporal_row<D: Defense>(d: &mut D) -> TemporalRow {
    let base = 0x1000u64;
    let meta = d.on_alloc(base, 64);
    assert!(d.check(meta, base, 1), "live access must pass");
    assert!(d.check_free(meta, base), "first free must pass");
    d.on_free(base, 64);
    TemporalRow {
        scheme: d.name(),
        use_after_free: !d.check(meta, base, 1),
        double_free: !d.check_free(meta, base),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asan, Mte, SoftBound};

    #[test]
    fn asan_detects_both_while_quarantined() {
        let row = temporal_row(&mut Asan::new());
        assert!(row.use_after_free);
        assert!(row.double_free);
    }

    #[test]
    fn softbound_detects_neither() {
        // Pointer-bounds schemes keep no free-time state: the stale
        // access is spatially in bounds and sails through.
        let row = temporal_row(&mut SoftBound::new());
        assert!(!row.use_after_free);
        assert!(!row.double_free);
    }

    #[test]
    fn mte_detection_rate_matches_the_analytic_probability() {
        let trials = 512u32;
        let mut uaf = 0u32;
        let mut df = 0u32;
        for seed in 0..u64::from(trials) {
            let row = temporal_row(&mut Mte::with_seed(seed));
            uaf += u32::from(row.use_after_free);
            df += u32::from(row.double_free);
        }
        for caught in [uaf, df] {
            let rate = f64::from(caught) / f64::from(trials);
            assert!(
                (rate - MTE_STALE_CATCH_PROBABILITY).abs() < 0.05,
                "rate {rate} vs model {MTE_STALE_CATCH_PROBABILITY}"
            );
        }
    }

    #[test]
    fn asan_eviction_model_matches_the_implementation() {
        // Free a 64-byte chunk under a 128-byte budget, then free `n`
        // further bytes; the model and the implementation must agree on
        // when the stale access starts passing again.
        for freed_after in [0u64, 64, 128, 192] {
            let mut a = Asan::with_quarantine(128);
            let m = a.on_alloc(0x1000, 64);
            a.on_free(0x1000, 64);
            let mut next = 0x4000u64;
            let mut remaining = freed_after;
            while remaining > 0 {
                let chunk = remaining.min(64);
                a.on_alloc(next, chunk);
                a.on_free(next, chunk);
                next += 0x1000;
                remaining -= chunk;
            }
            let detected = !a.check(m, 0x1000, 1);
            assert_eq!(
                detected,
                asan_uaf_detected(Some(128), 64, freed_after),
                "freed_after={freed_after}"
            );
        }
    }

    #[test]
    fn tag_reuse_probability_is_flat_per_check() {
        assert_eq!(mte_tag_reuse_probability(0), 0.0);
        assert!((mte_tag_reuse_probability(1) - 1.0 / 16.0).abs() < 1e-12);
        assert!((mte_tag_reuse_probability(100) - 1.0 / 16.0).abs() < 1e-12);
    }
}
