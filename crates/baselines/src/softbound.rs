//! SoftBound-style pointer-based defense: full per-pointer bounds kept in
//! a disjoint metadata table keyed by the pointer's *home location*.
//!
//! Here the granularity experiment only needs the bounds-propagation
//! rules, but the shadow table is implemented too so the metadata-traffic
//! cost model (two table operations per pointer load/store) can be
//! benchmarked against In-Fat Pointer's tag-based lookup.

use crate::{Defense, PtrMeta};
use ifp_tag::Bounds;
use std::collections::HashMap;

/// The SoftBound-style defense.
#[derive(Debug, Default)]
pub struct SoftBound {
    /// Disjoint metadata: pointer home address -> bounds.
    table: HashMap<u64, Bounds>,
    /// Table operations performed (the overhead driver).
    pub table_ops: u64,
}

impl SoftBound {
    /// Creates an empty instance.
    #[must_use]
    pub fn new() -> Self {
        SoftBound::default()
    }

    /// Records the bounds of a pointer stored at `home` (instrumented
    /// pointer store).
    pub fn store_pointer(&mut self, home: u64, bounds: Bounds) {
        self.table_ops += 1;
        self.table.insert(home, bounds);
    }

    /// Retrieves the bounds of a pointer loaded from `home` (instrumented
    /// pointer load). Unknown homes yield cleared bounds, like loading a
    /// pointer written by uninstrumented code.
    pub fn load_pointer(&mut self, home: u64) -> Bounds {
        self.table_ops += 1;
        self.table
            .get(&home)
            .copied()
            .unwrap_or_else(Bounds::cleared)
    }
}

impl Defense for SoftBound {
    fn name(&self) -> &'static str {
        "SoftBound-style (pointer-based)"
    }

    fn on_alloc(&mut self, base: u64, size: u64) -> PtrMeta {
        PtrMeta::Bounds(Bounds::from_base_size(base, size))
    }

    fn on_free(&mut self, _base: u64, _size: u64) {}

    fn on_subobject(&mut self, parent: PtrMeta, field_base: u64, field_size: u64) -> PtrMeta {
        match parent {
            PtrMeta::Bounds(b) => {
                PtrMeta::Bounds(Bounds::from_base_size(field_base, field_size).intersect(b))
            }
            other => other,
        }
    }

    fn check(&self, meta: PtrMeta, addr: u64, size: u64) -> bool {
        match meta {
            PtrMeta::Bounds(b) => b.allows_access(addr, size),
            _ => true,
        }
    }

    fn object_granularity(&self) -> &'static str {
        "exact"
    }

    fn subobject_granularity(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_table_roundtrip() {
        let mut sb = SoftBound::new();
        let b = Bounds::from_base_size(0x1000, 64);
        sb.store_pointer(0x8000, b);
        assert_eq!(sb.load_pointer(0x8000), b);
        assert!(sb.load_pointer(0x9000).is_cleared());
        assert_eq!(sb.table_ops, 3);
    }

    #[test]
    fn narrowing_clamps_to_parent() {
        let mut sb = SoftBound::new();
        let p = sb.on_alloc(0x1000, 64);
        let sub = sb.on_subobject(p, 0x1000, 32);
        assert!(sb.check(sub, 0x101f, 1));
        assert!(!sb.check(sub, 0x1020, 1));
    }
}
