//! Microbenchmark: `promote` latency per metadata scheme and per bypass
//! path (host-side execution speed of the simulated IFP unit — the
//! component exercised by every pointer load in instrumented runs).

use criterion::{criterion_group, criterion_main, Criterion};
use ifp_bench::fixtures::promote_fixture;
use ifp_hw::IfpUnit;
use std::hint::black_box;

fn bench_promote(c: &mut Criterion) {
    let mut group = c.benchmark_group("promote");
    let unit = IfpUnit::default();

    let mut fx = promote_fixture();
    group.bench_function("legacy_bypass", |b| {
        b.iter(|| unit.promote(black_box(fx.legacy), &mut fx.mem, &fx.ctrl).unwrap())
    });
    group.bench_function("local_offset", |b| {
        b.iter(|| unit.promote(black_box(fx.local), &mut fx.mem, &fx.ctrl).unwrap())
    });
    group.bench_function("local_offset_narrowing", |b| {
        b.iter(|| {
            unit.promote(black_box(fx.local_narrow), &mut fx.mem, &fx.ctrl)
                .unwrap()
        })
    });
    group.bench_function("subheap", |b| {
        b.iter(|| unit.promote(black_box(fx.subheap), &mut fx.mem, &fx.ctrl).unwrap())
    });
    group.bench_function("global_table", |b| {
        b.iter(|| unit.promote(black_box(fx.global), &mut fx.mem, &fx.ctrl).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_promote);
criterion_main!(benches);
