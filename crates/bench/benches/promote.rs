//! Microbenchmark: `promote` latency per metadata scheme and per bypass
//! path (host-side execution speed of the simulated IFP unit — the
//! component exercised by every pointer load in instrumented runs).

use ifp_bench::fixtures::promote_fixture;
use ifp_hw::IfpUnit;
use ifp_testutil::bench_ns;
use std::hint::black_box;

fn main() {
    println!("promote");
    let unit = IfpUnit::default();

    let mut fx = promote_fixture();
    bench_ns("legacy_bypass", 200, || {
        unit.promote(black_box(fx.legacy), &mut fx.mem, &fx.ctrl)
            .unwrap()
    });
    bench_ns("local_offset", 200, || {
        unit.promote(black_box(fx.local), &mut fx.mem, &fx.ctrl)
            .unwrap()
    });
    bench_ns("local_offset_narrowing", 200, || {
        unit.promote(black_box(fx.local_narrow), &mut fx.mem, &fx.ctrl)
            .unwrap()
    });
    bench_ns("subheap", 200, || {
        unit.promote(black_box(fx.subheap), &mut fx.mem, &fx.ctrl)
            .unwrap()
    });
    bench_ns("global_table", 200, || {
        unit.promote(black_box(fx.global), &mut fx.mem, &fx.ctrl)
            .unwrap()
    });
}
