//! Microbenchmark: allocator fast paths — baseline libc-style malloc vs
//! the wrapped allocator (per-object metadata) vs the subheap allocator
//! (shared per-block metadata). The subheap/wrapped gap here is the
//! mechanism behind treeadd/perimeter speedups and slowdowns in Fig 10.

use ifp_alloc::{GlobalTableManager, LibcAllocator, SubheapAllocator, WrappedAllocator};
use ifp_mem::MemSystem;
use ifp_meta::MacKey;
use ifp_testutil::bench_ns;
use std::hint::black_box;

fn main() {
    println!("malloc_free_40B");
    let key = MacKey::default_for_sim();

    {
        let mut mem = MemSystem::with_default_l1();
        let mut heap = LibcAllocator::new(0x4000_0000, 1 << 26);
        bench_ns("libc_baseline", 200, || {
            let p = heap.malloc(&mut mem.mem, black_box(40)).unwrap();
            heap.free(&mut mem.mem, p).unwrap();
        });
    }

    {
        let mut mem = MemSystem::with_default_l1();
        let mut gt = GlobalTableManager::new(0x2000_0000);
        gt.map(&mut mem);
        let mut heap = WrappedAllocator::new(0x4000_0000, 1 << 26, key);
        bench_ns("wrapped", 200, || {
            let (p, _) = heap.malloc(&mut mem, &mut gt, black_box(40), 0).unwrap();
            heap.free(&mut mem, &mut gt, p.addr()).unwrap();
        });
    }

    {
        let mut mem = MemSystem::with_default_l1();
        let mut heap = SubheapAllocator::new(0x5000_0000, 26, key);
        // Pin one object so the block stays live: measures the slot
        // push/pop fast path rather than block churn.
        let (_pin, _) = heap.malloc(&mut mem, 40, 0).unwrap();
        bench_ns("subheap", 200, || {
            let (p, _) = heap.malloc(&mut mem, black_box(40), 0).unwrap();
            heap.free(&mut mem, p.addr()).unwrap();
        });
    }

    {
        // The slow path: alternating single alloc/free returns the block
        // to the buddy allocator and re-creates it (metadata + MAC) every
        // iteration.
        let mut mem = MemSystem::with_default_l1();
        let mut heap = SubheapAllocator::new(0x5000_0000, 26, key);
        bench_ns("subheap_block_churn", 200, || {
            let (p, _) = heap.malloc(&mut mem, black_box(40), 0).unwrap();
            heap.free(&mut mem, p.addr()).unwrap();
        });
    }
}
