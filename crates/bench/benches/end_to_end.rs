//! End-to-end VM throughput on a small treeadd across the five
//! configurations — the bench behind Figure 10's per-configuration
//! overheads at micro scale.

use criterion::{criterion_group, criterion_main, Criterion};
use ifp_vm::{run, AllocatorKind, Mode, VmConfig};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let program = ifp_workloads::olden::treeadd::build(8);
    let mut group = c.benchmark_group("treeadd_depth8");
    group.sample_size(20);
    for mode in [
        Mode::Baseline,
        Mode::instrumented(AllocatorKind::Subheap),
        Mode::instrumented(AllocatorKind::Wrapped),
        Mode::Instrumented {
            allocator: AllocatorKind::Subheap,
            no_promote: true,
        },
    ] {
        group.bench_function(format!("{mode}"), |b| {
            b.iter(|| run(black_box(&program), &VmConfig::with_mode(mode)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
