//! End-to-end VM throughput on a small treeadd across the five
//! configurations — the bench behind Figure 10's per-configuration
//! overheads at micro scale.

use ifp_testutil::bench_ns;
use ifp_vm::{run, AllocatorKind, Mode, VmConfig};
use std::hint::black_box;

fn main() {
    let program = ifp_workloads::olden::treeadd::build(8);
    println!("treeadd_depth8");
    for mode in [
        Mode::Baseline,
        Mode::instrumented(AllocatorKind::Subheap),
        Mode::instrumented(AllocatorKind::Wrapped),
        Mode::Instrumented {
            allocator: AllocatorKind::Subheap,
            no_promote: true,
        },
    ] {
        bench_ns(&format!("{mode}"), 400, || {
            run(black_box(&program), &VmConfig::with_mode(mode)).unwrap()
        });
    }
}
