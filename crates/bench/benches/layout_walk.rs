//! Microbenchmark: layout-table narrowing cost by nesting depth — the
//! component the paper's area analysis calls "the most complex in the
//! processor modification", whose recursive walk with division is why
//! deep array-of-struct promotes are expensive.

use ifp_meta::layout::{LayoutTable, LayoutTableBuilder};
use ifp_tag::Bounds;
use ifp_testutil::bench_ns;
use std::hint::black_box;

/// Builds a chain of nested array-of-struct levels, returning the table
/// and the deepest leaf index.
fn nested_table(depth: u32) -> (LayoutTable, u16) {
    // Level sizes: leaf = 8 bytes; each level wraps the previous in a
    // 2-element array plus an 8-byte header.
    let mut sizes = vec![8u32];
    for _ in 0..depth {
        let inner = *sizes.last().unwrap();
        sizes.push(8 + inner * 2);
    }
    let total = *sizes.last().unwrap();
    let mut b = LayoutTableBuilder::new(total);
    let mut parent = 0u16;
    let mut leaf = 0u16;
    for level in (0..depth).rev() {
        let inner = sizes[level as usize];
        // array member at offset 8 of the current parent element.
        let arr = b.child(parent, 8, 8 + inner * 2, inner).unwrap();
        parent = arr;
        leaf = arr;
    }
    (b.build(), leaf)
}

fn main() {
    println!("layout_narrow");
    for depth in [1u32, 2, 4, 8] {
        let (table, leaf) = nested_table(depth);
        let size = table.entries()[0].elem_size;
        let bounds = Bounds::from_base_size(0x1000, u64::from(size));
        bench_ns(&format!("depth_{depth}"), 100, || {
            table
                .narrow(black_box(bounds), black_box(0x1000 + 24), leaf)
                .unwrap()
        });
    }
}
