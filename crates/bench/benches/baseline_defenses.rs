//! Microbenchmark: per-access check cost of the comparator defenses vs
//! the In-Fat Pointer bounds check (a register compare).

use criterion::{criterion_group, criterion_main, Criterion};
use ifp_baselines::{Asan, Defense, Mte, SoftBound};
use ifp_tag::Bounds;
use std::hint::black_box;

fn bench_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("access_check");

    // IFP after promote: a plain bounds compare.
    let bounds = Bounds::from_base_size(0x1000, 64);
    group.bench_function("ifp_bounds_register", |b| {
        b.iter(|| bounds.allows_access(black_box(0x1020), black_box(8)))
    });

    let mut sb = SoftBound::new();
    let m = sb.on_alloc(0x1000, 64);
    group.bench_function("softbound", |b| {
        b.iter(|| sb.check(black_box(m), black_box(0x1020), 8))
    });

    let mut asan = Asan::new();
    let am = asan.on_alloc(0x1000, 64);
    group.bench_function("asan_shadow", |b| {
        b.iter(|| asan.check(black_box(am), black_box(0x1020), 8))
    });

    let mut mte = Mte::with_seed(3);
    let tm = mte.on_alloc(0x1000, 64);
    group.bench_function("mte_tag", |b| {
        b.iter(|| mte.check(black_box(tm), black_box(0x1020), 8))
    });

    // SoftBound's real cost driver: the shadow-table traffic per pointer
    // load/store.
    group.bench_function("softbound_metadata_roundtrip", |b| {
        let mut sb = SoftBound::new();
        b.iter(|| {
            sb.store_pointer(black_box(0x8000), bounds);
            black_box(sb.load_pointer(black_box(0x8000)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_checks);
criterion_main!(benches);
