//! Microbenchmark: per-access check cost of the comparator defenses vs
//! the In-Fat Pointer bounds check (a register compare).

use ifp_baselines::{Asan, Defense, Mte, SoftBound};
use ifp_tag::Bounds;
use ifp_testutil::bench_ns;
use std::hint::black_box;

fn main() {
    println!("access_check");

    // IFP after promote: a plain bounds compare.
    let bounds = Bounds::from_base_size(0x1000, 64);
    bench_ns("ifp_bounds_register", 100, || {
        bounds.allows_access(black_box(0x1020), black_box(8))
    });

    let mut sb = SoftBound::new();
    let m = sb.on_alloc(0x1000, 64);
    bench_ns("softbound", 100, || {
        sb.check(black_box(m), black_box(0x1020), 8)
    });

    let mut asan = Asan::new();
    let am = asan.on_alloc(0x1000, 64);
    bench_ns("asan_shadow", 100, || {
        asan.check(black_box(am), black_box(0x1020), 8)
    });

    let mut mte = Mte::with_seed(3);
    let tm = mte.on_alloc(0x1000, 64);
    bench_ns("mte_tag", 100, || {
        mte.check(black_box(tm), black_box(0x1020), 8)
    });

    // SoftBound's real cost driver: the shadow-table traffic per pointer
    // load/store.
    let mut sb2 = SoftBound::new();
    bench_ns("softbound_metadata_roundtrip", 100, || {
        sb2.store_pointer(black_box(0x8000), bounds);
        black_box(sb2.load_pointer(black_box(0x8000)))
    });
}
