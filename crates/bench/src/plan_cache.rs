//! The plan-cache section: per-suite artifact-cache telemetry.
//!
//! Every number here is host telemetry ([`CacheStats`] lives outside
//! `RunStats` like `FusionStats`), so nothing in this section may feed a
//! golden-pinned table. What it shows is the amortization structure: a
//! suite that replays the same programs across modes, tiers, and reps
//! collapses to a handful of compiles, and the hit rate tells you how
//! much of the suite's former per-run compile work the cache absorbed.

use ifp_juliet::{all_cases, run_suite_with_workers_cached};
use ifp_plancache::{CacheStats, PlanCache};
use ifp_vm::{AllocatorKind, ExecTier, Mode};

/// One suite's cache telemetry.
#[derive(Clone, Copy, Debug)]
pub struct SuiteCache {
    /// Suite label.
    pub suite: &'static str,
    /// Program executions the suite issued through the cache.
    pub runs: u64,
    /// The cache counters after the suite completed.
    pub stats: CacheStats,
}

/// Runs the Juliet spatial suite — four modes on the interpreter tier
/// plus the subheap configuration on the fused tier — through one
/// shared cache and reports its telemetry. Outcomes are asserted
/// internally by the harness; this section only surfaces the cache
/// counters.
#[must_use]
pub fn juliet_suite(workers: usize) -> SuiteCache {
    let cases = all_cases();
    let cache = PlanCache::new();
    let modes = [
        Mode::Baseline,
        Mode::instrumented(AllocatorKind::Wrapped),
        Mode::instrumented(AllocatorKind::Subheap),
        Mode::Instrumented {
            allocator: AllocatorKind::Subheap,
            no_promote: true,
        },
    ];
    let mut runs = 0u64;
    for mode in modes {
        let _ =
            run_suite_with_workers_cached(&cases, mode, workers, ExecTier::Interp, Some(&cache));
        runs += cases.len() as u64;
    }
    let jit = run_suite_with_workers_cached(
        &cases,
        Mode::instrumented(AllocatorKind::Subheap),
        workers,
        ExecTier::Jit,
        Some(&cache),
    );
    assert!(jit.is_clean(), "warm fused-tier suite regressed: {jit}");
    runs += cases.len() as u64;
    SuiteCache {
        suite: "juliet_spatial",
        runs,
        stats: cache.stats(),
    }
}

/// Renders the per-suite telemetry as a fixed-width table.
#[must_use]
pub fn render_table(rows: &[SuiteCache]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "Plan cache (content-addressed compiled artifacts; host telemetry, never modeled)\n",
    );
    out.push_str(
        "  suite                 runs  artifacts      hits    misses  hit-rate  compile_ms  \
         resident_KiB  evicted\n",
    );
    for r in rows {
        let s = r.stats;
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>10} {:>9} {:>9} {:>8.1}% {:>11.1} {:>13} {:>8}",
            r.suite,
            r.runs,
            s.resident_artifacts,
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.compile_ns as f64 / 1e6,
            s.resident_bytes / 1024,
            s.evictions,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn juliet_suite_amortizes_to_three_artifacts_per_case() {
        let row = juliet_suite(4);
        let s = row.stats;
        // 5 suite passes per case collapse to 3 artifact keys per case:
        // baseline-interp, instrumented-interp (shared by all three
        // instrumented mode passes), instrumented-jit. No two workers
        // ever race one case's key, so the split is exact.
        let cases = row.runs / 5;
        assert_eq!(s.hits + s.misses, row.runs, "{s:?}");
        assert_eq!(s.misses, 3 * cases, "{s:?}");
        assert_eq!(s.hits, 2 * cases, "{s:?}");
        assert_eq!(s.evictions, 0, "default budget must not thrash: {s:?}");
        let table = render_table(&[row]);
        assert!(table.contains("juliet_spatial"), "{table}");
    }
}
