//! The `jit` section: execution-tier comparison over the seed workloads.
//!
//! For every workload this fuses the program (static coverage), runs the
//! subheap configuration on both execution tiers, asserts the modeled
//! statistics are bit-identical (the tier contract — a mismatch is a
//! harness regression, not a table entry), and reports the dynamic
//! fusion coverage, the dispatch breakdown, and the host wall-clock
//! speedup of the fused tier over the interpreter.
//!
//! Wall-clock columns measure the *host* and vary run to run and machine
//! to machine; every other column is deterministic.

use ifp_jit::{fuse_with_coverage, StaticCoverage};
use ifp_testutil::{default_workers, par_map};
use ifp_vm::{run, AllocatorKind, ExecTier, FusionStats, Mode, VmConfig};
use ifp_workloads::Workload;
use std::time::Instant;

/// Tier comparison for one workload (subheap configuration).
#[derive(Clone, Debug)]
pub struct WorkloadJit {
    /// Benchmark name.
    pub workload: &'static str,
    /// Static fusion coverage of the instrumented program.
    pub static_cov: StaticCoverage,
    /// Dynamic dispatch counters from the fused run.
    pub fusion: FusionStats,
    /// Modeled cycles (identical across tiers, asserted).
    pub cycles: u64,
    /// Interpreter-tier wall-clock, milliseconds.
    pub interp_ms: f64,
    /// Fused-tier wall-clock, milliseconds.
    pub jit_ms: f64,
}

impl WorkloadJit {
    /// Host speedup of the fused tier (interpreter wall / jit wall).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.jit_ms > 0.0 {
            self.interp_ms / self.jit_ms
        } else {
            0.0
        }
    }

    /// Superinstruction dispatches + generic/terminator dispatches.
    #[must_use]
    pub fn dispatches(&self) -> u64 {
        self.fusion.arith_runs
            + self.fusion.pairs
            + self.fusion.specialized
            + self.fusion.generic
            + self.fusion.terminators
    }

    /// Dynamic ops retired per dispatch (the fusion compression ratio;
    /// 1.0 means no compression, higher is better).
    #[must_use]
    pub fn ops_per_dispatch(&self) -> f64 {
        let d = self.dispatches();
        if d == 0 {
            0.0
        } else {
            (self.fusion.dynamic_ops() + self.fusion.terminators) as f64 / d as f64
        }
    }
}

/// Measures one workload on both tiers under the subheap configuration.
///
/// # Panics
///
/// Panics when a run fails or the tiers' modeled statistics differ —
/// both are regressions, never table entries.
#[must_use]
pub fn measure_workload(w: &Workload) -> WorkloadJit {
    let program = w.build_default();
    let (_, static_cov) = fuse_with_coverage(&program, true, false);
    let mut icfg = VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
    let mut jcfg = icfg;
    jcfg.exec_tier = ExecTier::Jit;

    icfg.exec_tier = ExecTier::Interp;
    let t0 = Instant::now();
    let ri = run(&program, &icfg).unwrap_or_else(|e| panic!("{} (interp): {e}", w.name));
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let rj = run(&program, &jcfg).unwrap_or_else(|e| panic!("{} (jit): {e}", w.name));
    let jit_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        ri.stats, rj.stats,
        "{}: modeled statistics drifted between tiers",
        w.name
    );
    assert_eq!(ri.output, rj.output, "{}: output drifted", w.name);
    WorkloadJit {
        workload: w.name,
        static_cov,
        fusion: rj.fusion.expect("jit run reports fusion stats"),
        cycles: rj.stats.cycles,
        interp_ms,
        jit_ms,
    }
}

/// Measures every workload on up to `workers` threads. The deterministic
/// columns are identical for any worker count; wall-clock columns are
/// noisier under parallel measurement (use `--workers 1` for the most
/// stable speedups).
#[must_use]
pub fn report_with_workers(workloads: &[Workload], workers: usize) -> Vec<WorkloadJit> {
    par_map(workloads, workers, measure_workload)
}

/// [`report_with_workers`] at the host's available parallelism.
#[must_use]
pub fn report(workloads: &[Workload]) -> Vec<WorkloadJit> {
    report_with_workers(workloads, default_workers())
}

/// Renders the section as a fixed-width table.
#[must_use]
pub fn render_table(rows: &[WorkloadJit]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("Execution tiers (subheap config; modeled stats bit-identical, asserted)\n");
    out.push_str(
        "  workload       dyn-ops  fused%  static%    runs    pairs  generic  ops/disp  speedup\n",
    );
    let mut interp_total = 0.0;
    let mut jit_total = 0.0;
    for r in rows {
        interp_total += r.interp_ms;
        jit_total += r.jit_ms;
        let _ = writeln!(
            out,
            "  {:<13} {:>8} {:>6.1}% {:>7.1}% {:>7} {:>8} {:>8} {:>9.2} {:>7.2}x",
            r.workload,
            r.fusion.dynamic_ops(),
            r.fusion.fused_percent(),
            r.static_cov.fused_percent(),
            r.fusion.arith_runs,
            r.fusion.pairs,
            r.fusion.generic,
            r.ops_per_dispatch(),
            r.speedup(),
        );
    }
    let overall = if jit_total > 0.0 {
        interp_total / jit_total
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  overall: interp {interp_total:.1}ms -> jit {jit_total:.1}ms ({overall:.2}x); \
         wall-clock is host-noisy, modeled columns are exact",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_rows_are_consistent_and_fused_coverage_is_real() {
        let workloads: Vec<Workload> = ifp_workloads::all()
            .into_iter()
            .filter(|w| w.name == "treeadd" || w.name == "em3d")
            .collect();
        let rows = report_with_workers(&workloads, 1);
        assert_eq!(rows.len(), workloads.len());
        for r in &rows {
            // The fused tier must actually fuse something on real
            // workloads, and every dispatch accounts for >= 1 op.
            assert!(
                r.fusion.fused_percent() > 10.0,
                "{}: {:?}",
                r.workload,
                r.fusion
            );
            assert!(r.ops_per_dispatch() >= 1.0, "{}", r.workload);
            assert!(r.cycles > 0);
        }
        let table = render_table(&rows);
        assert!(table.contains("treeadd"), "{table}");
        assert!(table.contains("overall:"), "{table}");
    }
}
