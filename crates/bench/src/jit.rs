//! The `jit` section: execution-tier comparison over the seed workloads.
//!
//! For every workload this fuses the program (static coverage), runs the
//! subheap configuration on both execution tiers, asserts the modeled
//! statistics are bit-identical (the tier contract — a mismatch is a
//! harness regression, not a table entry), and reports the dynamic
//! fusion coverage, the dispatch breakdown, and the host wall-clock
//! speedup of the fused tier over the interpreter.
//!
//! Wall-clock columns measure the *host* and vary run to run and machine
//! to machine; every other column is deterministic.

use ifp_jit::{fuse_with_coverage, StaticCoverage};
use ifp_plancache::{CacheStats, PlanCache};
use ifp_testutil::{default_workers, par_map};
use ifp_vm::{run, AllocatorKind, ExecTier, FusionStats, Mode, VmConfig};
use ifp_workloads::Workload;
use std::time::Instant;

/// Tier comparison for one workload (subheap configuration).
#[derive(Clone, Debug)]
pub struct WorkloadJit {
    /// Benchmark name.
    pub workload: &'static str,
    /// Static fusion coverage of the instrumented program.
    pub static_cov: StaticCoverage,
    /// Dynamic dispatch counters from the fused run.
    pub fusion: FusionStats,
    /// Modeled cycles (identical across tiers, asserted).
    pub cycles: u64,
    /// Interpreter-tier wall-clock, milliseconds.
    pub interp_ms: f64,
    /// Fused-tier wall-clock, milliseconds.
    pub jit_ms: f64,
    /// Warm-cache fused-tier wall-clock (artifact already resident in a
    /// [`PlanCache`]), milliseconds. `None` when measured cache-off.
    pub warm_jit_ms: Option<f64>,
    /// One-time compile cost of this workload's artifacts (both tiers)
    /// as charged by the cache, milliseconds. `None` cache-off.
    pub compile_ms: Option<f64>,
}

impl WorkloadJit {
    /// Host speedup of the fused tier (interpreter wall / jit wall).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.jit_ms > 0.0 {
            self.interp_ms / self.jit_ms
        } else {
            0.0
        }
    }

    /// Superinstruction dispatches + generic/terminator dispatches.
    #[must_use]
    pub fn dispatches(&self) -> u64 {
        self.fusion.arith_runs
            + self.fusion.pairs
            + self.fusion.specialized
            + self.fusion.generic
            + self.fusion.terminators
    }

    /// Dynamic ops retired per dispatch (the fusion compression ratio;
    /// 1.0 means no compression, higher is better).
    #[must_use]
    pub fn ops_per_dispatch(&self) -> f64 {
        let d = self.dispatches();
        if d == 0 {
            0.0
        } else {
            (self.fusion.dynamic_ops() + self.fusion.terminators) as f64 / d as f64
        }
    }

    /// Host speedup of the *warm-cache* fused tier over the interpreter
    /// (compile amortized away). `None` when measured cache-off.
    #[must_use]
    pub fn warm_speedup(&self) -> Option<f64> {
        match self.warm_jit_ms {
            Some(w) if w > 0.0 => Some(self.interp_ms / w),
            _ => None,
        }
    }
}

/// Measures one workload on both tiers under the subheap configuration.
///
/// # Panics
///
/// Panics when a run fails or the tiers' modeled statistics differ —
/// both are regressions, never table entries.
#[must_use]
pub fn measure_workload(w: &Workload) -> WorkloadJit {
    measure_workload_cached(w, None)
}

/// [`measure_workload`] plus, when a [`PlanCache`] is supplied, a warm
/// re-run of the fused tier through the cache: the artifact is resident,
/// so the warm column isolates execution from the one-time compile cost
/// (which is reported separately). The warm run's modeled statistics and
/// output are asserted identical to the cold ones — cache invisibility,
/// checked here too.
///
/// # Panics
///
/// Panics when a run fails or any run's modeled statistics differ.
#[must_use]
pub fn measure_workload_cached(w: &Workload, cache: Option<&PlanCache>) -> WorkloadJit {
    let program = w.build_default();
    let (_, static_cov) = fuse_with_coverage(&program, true, false);
    let mut icfg = VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
    let mut jcfg = icfg;
    jcfg.exec_tier = ExecTier::Jit;

    icfg.exec_tier = ExecTier::Interp;
    let t0 = Instant::now();
    let ri = run(&program, &icfg).unwrap_or_else(|e| panic!("{} (interp): {e}", w.name));
    let interp_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let rj = run(&program, &jcfg).unwrap_or_else(|e| panic!("{} (jit): {e}", w.name));
    let jit_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        ri.stats, rj.stats,
        "{}: modeled statistics drifted between tiers",
        w.name
    );
    assert_eq!(ri.output, rj.output, "{}: output drifted", w.name);

    let (warm_jit_ms, compile_ms) = match cache {
        None => (None, None),
        Some(c) => {
            let ia = c
                .artifact(&program, &icfg)
                .unwrap_or_else(|e| panic!("{} (interp artifact): {e}", w.name));
            let ja = c
                .artifact(&program, &jcfg)
                .unwrap_or_else(|e| panic!("{} (jit artifact): {e}", w.name));
            let t2 = Instant::now();
            let rw = c
                .run(&program, &jcfg)
                .unwrap_or_else(|e| panic!("{} (warm jit): {e}", w.name));
            let warm = t2.elapsed().as_secs_f64() * 1e3;
            assert_eq!(ri.stats, rw.stats, "{}: warm-cache stats drifted", w.name);
            assert_eq!(
                ri.output, rw.output,
                "{}: warm-cache output drifted",
                w.name
            );
            (
                Some(warm),
                Some((ia.compile_ns + ja.compile_ns) as f64 / 1e6),
            )
        }
    };
    WorkloadJit {
        workload: w.name,
        static_cov,
        fusion: rj.fusion.expect("jit run reports fusion stats"),
        cycles: rj.stats.cycles,
        interp_ms,
        jit_ms,
        warm_jit_ms,
        compile_ms,
    }
}

/// Measures every workload on up to `workers` threads. The deterministic
/// columns are identical for any worker count; wall-clock columns are
/// noisier under parallel measurement (use `--workers 1` for the most
/// stable speedups).
#[must_use]
pub fn report_with_workers(workloads: &[Workload], workers: usize) -> Vec<WorkloadJit> {
    par_map(workloads, workers, measure_workload)
}

/// [`report_with_workers`] through an optional shared [`PlanCache`],
/// adding the warm-run and compile columns.
#[must_use]
pub fn report_with_workers_cached(
    workloads: &[Workload],
    workers: usize,
    cache: Option<&PlanCache>,
) -> Vec<WorkloadJit> {
    par_map(workloads, workers, |w| measure_workload_cached(w, cache))
}

/// [`report_with_workers`] at the host's available parallelism.
#[must_use]
pub fn report(workloads: &[Workload]) -> Vec<WorkloadJit> {
    report_with_workers(workloads, default_workers())
}

/// Renders the section as a fixed-width table.
#[must_use]
pub fn render_table(rows: &[WorkloadJit]) -> String {
    render_table_cached(rows, None)
}

/// [`render_table`] with the cache columns (per-workload compile cost
/// and warm-cache speedup) and a per-suite [`CacheStats`] footer.
#[must_use]
pub fn render_table_cached(rows: &[WorkloadJit], cache: Option<CacheStats>) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("Execution tiers (subheap config; modeled stats bit-identical, asserted)\n");
    out.push_str(
        "  workload       dyn-ops  fused%  static%    runs    pairs  generic  ops/disp  speedup  \
         compile   warm\n",
    );
    let mut interp_total = 0.0;
    let mut jit_total = 0.0;
    let mut warm_total = 0.0;
    let mut have_warm = false;
    for r in rows {
        interp_total += r.interp_ms;
        jit_total += r.jit_ms;
        let _ = write!(
            out,
            "  {:<13} {:>8} {:>6.1}% {:>7.1}% {:>7} {:>8} {:>8} {:>9.2} {:>7.2}x",
            r.workload,
            r.fusion.dynamic_ops(),
            r.fusion.fused_percent(),
            r.static_cov.fused_percent(),
            r.fusion.arith_runs,
            r.fusion.pairs,
            r.fusion.generic,
            r.ops_per_dispatch(),
            r.speedup(),
        );
        match (r.compile_ms, r.warm_speedup()) {
            (Some(c), Some(wx)) => {
                have_warm = true;
                warm_total += r.warm_jit_ms.unwrap_or(0.0);
                let _ = writeln!(out, " {c:>7.2}ms {wx:>5.2}x");
            }
            _ => out.push_str("        -      -\n"),
        }
    }
    let overall = if jit_total > 0.0 {
        interp_total / jit_total
    } else {
        0.0
    };
    let _ = write!(
        out,
        "  overall: interp {interp_total:.1}ms -> jit {jit_total:.1}ms ({overall:.2}x)",
    );
    if have_warm && warm_total > 0.0 {
        let _ = write!(
            out,
            " -> warm jit {warm_total:.1}ms ({:.2}x)",
            interp_total / warm_total
        );
    }
    out.push_str("; wall-clock is host-noisy, modeled columns are exact\n");
    if let Some(s) = cache {
        let _ = writeln!(
            out,
            "  plan cache: {} hits / {} misses ({:.1}% hit rate), compile {:.1}ms total, \
             {} artifacts resident ({} KiB), {} evictions",
            s.hits,
            s.misses,
            s.hit_rate() * 100.0,
            s.compile_ns as f64 / 1e6,
            s.resident_artifacts,
            s.resident_bytes / 1024,
            s.evictions,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_rows_are_consistent_and_fused_coverage_is_real() {
        let workloads: Vec<Workload> = ifp_workloads::all()
            .into_iter()
            .filter(|w| w.name == "treeadd" || w.name == "em3d")
            .collect();
        let rows = report_with_workers(&workloads, 1);
        assert_eq!(rows.len(), workloads.len());
        for r in &rows {
            // The fused tier must actually fuse something on real
            // workloads, and every dispatch accounts for >= 1 op.
            assert!(
                r.fusion.fused_percent() > 10.0,
                "{}: {:?}",
                r.workload,
                r.fusion
            );
            assert!(r.ops_per_dispatch() >= 1.0, "{}", r.workload);
            assert!(r.cycles > 0);
        }
        let table = render_table(&rows);
        assert!(table.contains("treeadd"), "{table}");
        assert!(table.contains("overall:"), "{table}");
    }
}
