//! Ablations over the design parameters the paper calls out (§6: "the
//! design parameter selection ... will benefit from a better knowledge of
//! application behaviors"; §5.2.4: cache-size sensitivity).

use ifp_mem::CacheConfig;
use ifp_vm::{run, Mode, VmConfig};

/// The local offset scheme's tag-bit split design space: `offset_bits +
/// index_bits = 12`. More offset bits mean larger objects; more index
/// bits mean more addressable subobjects (paper §3.3.1).
#[must_use]
pub fn tag_split_table() -> String {
    let mut out = String::from(
        "Ablation: local-offset tag-bit split (offset + subobject index = 12 bits)\n\
         | Offset bits | Max object (16 B granule) | Max layout entries |\n\
         |---|---|---|\n",
    );
    for offset_bits in 3u32..=9 {
        let index_bits = 12 - offset_bits;
        let max_obj = ((1u64 << offset_bits) - 1) * 16;
        let marker = if offset_bits == 6 {
            "  <- prototype"
        } else {
            ""
        };
        out.push_str(&format!(
            "| {offset_bits} | {max_obj} B | {}{marker} |\n",
            1u64 << index_bits
        ));
    }
    out
}

/// The granule-size trade-off: a larger granule covers larger objects
/// with the same offset bits but wastes more padding per object. The
/// waste column is measured against the allocation-size mix of the given
/// samples (object sizes in bytes).
#[must_use]
pub fn granule_table(sample_sizes: &[u64]) -> String {
    let mut out = String::from(
        "Ablation: local-offset granule size (6 offset bits)\n\
         | Granule | Max object | Mean padding over sampled sizes |\n\
         |---|---|---|\n",
    );
    for granule in [8u64, 16, 32, 64] {
        let max_obj = 63 * granule;
        let waste: u64 = sample_sizes
            .iter()
            .map(|&s| s.div_ceil(granule) * granule - s)
            .sum();
        let mean = waste as f64 / sample_sizes.len().max(1) as f64;
        let marker = if granule == 16 { "  <- prototype" } else { "" };
        out.push_str(&format!(
            "| {granule} B | {max_obj} B | {mean:.1} B/object{marker} |\n"
        ));
    }
    out
}

/// Empirical cache-size sweep on `health`. The wrapped allocator's
/// per-object metadata roughly doubles the metadata working set, so its
/// miss increase *peaks* at the cache size where the baseline just fits
/// but baseline+metadata does not, then collapses once the cache holds
/// everything — the §5.2.4 prediction that an ASIC with larger caches is
/// hurt less by metadata traffic. The subheap scheme's shared records
/// stay flat throughout.
#[must_use]
pub fn cache_sweep() -> String {
    cache_sweep_with_workers(1)
}

/// [`cache_sweep`] on up to `workers` threads — one ticket per L1 size,
/// rows assembled in size order, so the table is identical for any
/// worker count.
#[must_use]
pub fn cache_sweep_with_workers(workers: usize) -> String {
    let program = ifp_workloads::olden::health::build(4);
    let sizes = [
        ("2 KiB", 32usize),
        ("4 KiB", 64),
        ("8 KiB", 128),
        ("16 KiB", 256),
        ("32 KiB", 512),
        ("64 KiB", 1024),
        ("128 KiB", 2048),
    ];
    let rows = ifp_testutil::par_map(&sizes, workers, |&(label, sets)| {
        let l1 = CacheConfig {
            line_size: 16,
            sets,
            ways: 4,
        };
        let misses = |mode: Mode| {
            let mut cfg = VmConfig::with_mode(mode);
            cfg.l1 = l1;
            run(&program, &cfg).expect("health runs").stats.l1.misses
        };
        let base = misses(Mode::Baseline).max(1) as f64;
        let sub = misses(Mode::instrumented(ifp_vm::AllocatorKind::Subheap)) as f64 / base - 1.0;
        let wrp = misses(Mode::instrumented(ifp_vm::AllocatorKind::Wrapped)) as f64 / base - 1.0;
        format!(
            "| {label} | {:+.1}% | {:+.1}% | {:.1} pts |\n",
            sub * 100.0,
            wrp * 100.0,
            (wrp - sub) * 100.0
        )
    });
    let mut out = String::from(
        "Ablation: L1 size sweep on health (miss-count increase vs baseline)\n\
         | L1 size | Subheap | Wrapped | Gap |\n\
         |---|---|---|---|\n",
    );
    for row in rows {
        out.push_str(&row);
    }
    out
}

/// Collects a realistic allocation-size sample from the treeadd/health/
/// em3d object mix (structurally: node sizes the workloads allocate).
#[must_use]
pub fn workload_size_sample() -> Vec<u64> {
    // Node sizes across the suite: tree nodes, list cells, graph nodes,
    // patients, hash entries, edges, bignum limbs...
    vec![
        24, 24, 24, 24, 32, 32, 40, 40, 40, 48, 16, 16, 16, 64, 24, 56, 88, 112, 20, 28,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_split_marks_the_prototype_point() {
        let t = tag_split_table();
        assert!(t.contains("| 6 | 1008 B | 64  <- prototype |"));
    }

    #[test]
    fn granule_waste_grows_with_granule() {
        let sizes = workload_size_sample();
        let t = granule_table(&sizes);
        assert!(t.contains("16 B | 1008 B"));
        // Extract the means and check monotonicity.
        let means: Vec<f64> = t
            .lines()
            .filter(|l| l.contains("B/object"))
            .map(|l| {
                l.split('|')
                    .nth(3)
                    .unwrap()
                    .trim()
                    .split(' ')
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .unwrap()
            })
            .collect();
        assert_eq!(means.len(), 4);
        assert!(means.windows(2).all(|w| w[0] <= w[1]), "{means:?}");
    }

    #[test]
    fn cache_sweep_gap_peaks_then_collapses() {
        let t = cache_sweep();
        let gaps: Vec<f64> = t
            .lines()
            .filter(|l| l.contains("pts"))
            .map(|l| {
                l.split('|')
                    .nth(4)
                    .unwrap()
                    .trim()
                    .split(' ')
                    .next()
                    .unwrap()
                    .parse::<f64>()
                    .unwrap()
            })
            .collect();
        assert_eq!(gaps.len(), 7);
        let peak = gaps.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            *gaps.last().unwrap() < peak / 2.0,
            "metadata thrashing should collapse once everything fits: {gaps:?}"
        );
    }
}
