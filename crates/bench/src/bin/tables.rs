//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p ifp-bench --bin tables -- [section ...]
//! [--workers N]` where sections are `table1 table2 table3 table4 fig10
//! fig11 fig12 fig13 juliet temporal analyze cache` or `all` (default).
//!
//! `--workers N` caps the sweep worker threads (default: the host's
//! available parallelism). Results are bit-identical for any worker
//! count — work fans out per case/configuration and merges back in
//! input order.
//!
//! `trace [workload]` is an extra mode (not part of `all`): it re-runs one
//! workload (default `treeadd`) with event tracing enabled and prints the
//! trace summary; `trace-jsonl [workload]` dumps the raw JSONL stream for
//! the `ifp-trace` CLI instead.
//!
//! `serve` is another extra mode (not part of `all`): it runs the
//! `ifp-serve` multi-tenant service simulation at the pinned seed and
//! prints the per-tenant latency/detection table. The full JSON report
//! comes from `bench -- serve` (see `BENCH_serve.json`).
//!
//! `concurrent` (also not part of `all`) summarizes the shared-heap
//! multi-threaded mode: benign lock-free workloads under each
//! reclamation tracker and the planted cross-thread detection matrix.
//!
//! `jit` (also not part of `all`) compares the execution tiers per
//! workload: dynamic fusion coverage, dispatch breakdown, and the host
//! wall-clock speedup of the fused tier — asserting along the way that
//! the modeled statistics are bit-identical across tiers.

use ifp_baselines::{temporal_row, Asan, Mte, SoftBound};
use ifp_bench::{render, sweep_all_with_workers_cached};
use ifp_juliet::{
    all_cases, run_suite_with_workers, run_temporal_suite_with_workers, temporal_cases,
};
use ifp_temporal::TemporalPolicy;
use ifp_vm::{AllocatorKind, Mode};

/// Runs `workload` once, instrumented (subheap), with full tracing, and
/// prints either the summary or the raw JSONL stream.
fn run_trace_mode(workload: &str, jsonl: bool) {
    let Some(w) = ifp_workloads::by_name(workload) else {
        eprintln!("unknown workload `{workload}`; known:");
        for w in ifp_workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    };
    let program = w.build_default();
    let mut config = ifp_vm::VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
    config.trace = ifp_trace::TraceConfig::all();
    let result = match ifp_vm::run(&program, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{workload} failed under tracing: {e}");
            std::process::exit(1);
        }
    };
    let log = result.trace.expect("tracing was enabled");
    if jsonl {
        print!("{}", log.to_jsonl());
    } else {
        let mut summary = ifp_trace::Summary::default();
        summary.add_log(&log);
        println!("Trace summary for `{workload}` (subheap, full tracing)");
        if log.dropped > 0 || log.sampled_out > 0 {
            println!(
                "ring tail only: {} older events overwritten, {} sampled out",
                log.dropped, log.sampled_out
            );
        }
        println!("{summary}");
    }
}

/// Strips `--workers N` from `args`, returning the worker count (default:
/// available parallelism).
fn parse_workers(args: &mut Vec<String>) -> usize {
    let mut workers = ifp_testutil::default_workers();
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        let n = args.get(i + 1).and_then(|v| v.parse::<usize>().ok());
        match n {
            Some(n) if n >= 1 => {
                workers = n;
                args.drain(i..=i + 1);
            }
            _ => {
                eprintln!("--workers needs a positive integer");
                std::process::exit(2);
            }
        }
    }
    workers
}

/// `tables serve`: the multi-tenant service simulation, rendered as the
/// hardened-vs-off comparison table. Deterministic for any worker
/// count; 2,048 requests at the pinned seed (the CI smoke size).
fn run_serve_mode(workers: usize) {
    let cfg = ifp_serve::ServeConfig {
        requests: 2_048,
        workers,
        ..ifp_serve::ServeConfig::default()
    };
    eprintln!(
        "serving {} requests over {} shards ({workers} workers)...",
        cfg.requests, cfg.shards
    );
    let r = ifp_serve::run_service(&cfg);
    println!("Multi-tenant service (seed {:#x}, virtual time)", cfg.seed);
    println!(
        "{:<14} {:>8} {:>9} {:>6} {:>8} {:>9} {:>11} {:>11} {:>11}",
        "tenant",
        "requests",
        "completed",
        "shed",
        "spatial",
        "temporal",
        "p50_ns",
        "p99_ns",
        "p999_ns"
    );
    for t in &r.tenants {
        let c = &t.counters;
        println!(
            "{:<14} {:>8} {:>9} {:>6} {:>8} {:>9} {:>11} {:>11} {:>11}",
            t.tenant.name,
            c.requests,
            c.completed,
            c.shed,
            c.detected_spatial,
            c.detected_temporal,
            t.latency.percentile(500),
            t.latency.percentile(990),
            t.latency.percentile(999),
        );
    }
    println!(
        "total: completed {} / shed {} / detected {}; makespan {} ms (virtual), \
         throughput {}.{:03} req/s, unexpected {}",
        r.completed,
        r.shed,
        r.detected,
        r.makespan_ns / 1_000_000,
        r.throughput_milli_rps() / 1000,
        r.throughput_milli_rps() % 1000,
        r.unexpected(),
    );
}

/// `tables concurrent`: benign lock-free workloads under each
/// reclamation tracker (ops, violations, retire/reclaim balance, peak
/// deferred memory) plus the 5×3 planted cross-thread detection matrix.
/// Fully deterministic — seeded scripts, seeded schedules.
fn run_concurrent_mode() {
    use ifp_concurrent::{
        check_outcome, planted_case, run, ConcConfig, Plan, PlantClass, Schedule,
    };
    use ifp_temporal::reclaim::ReclaimPolicy;
    use ifp_workloads::concurrent::{gen_script, ConcStructure};

    println!("Concurrent execution: shared heap, 4 threads, seeded interleavings");
    println!(
        "{:<14} {:<9} {:>6} {:>10} {:>8} {:>8} {:>13} {:>7}",
        "structure", "policy", "ops", "violations", "retires", "reclaims", "peak_deferred", "steps"
    );
    for structure in ConcStructure::ALL {
        for policy in ReclaimPolicy::ALL {
            let script = gen_script(structure, 4, 200, &mut ifp_testutil::Rng::new(0xc0c));
            let cfg = ConcConfig {
                policy,
                plan: Plan::Structure(script),
                schedule: Schedule::Seeded(0x51ed),
            };
            let out = run(&cfg);
            assert!(!out.fuel_exhausted, "{structure:?}/{policy:?}: out of fuel");
            println!(
                "{:<14} {:<9} {:>6} {:>10} {:>8} {:>8} {:>13} {:>7}",
                structure.name(),
                policy.name(),
                out.ops_completed,
                out.violations.len(),
                out.stats.retires,
                out.stats.reclaims,
                out.stats.peak_deferred_bytes,
                out.steps,
            );
        }
    }

    println!("\nPlanted cross-thread temporal bugs: detection by tracker");
    println!(
        "{:<18} {:>8} {:>8} {:>10}",
        "class", "epoch", "hazard", "interval"
    );
    for class in PlantClass::ALL {
        let mut cells = Vec::new();
        for policy in ReclaimPolicy::ALL {
            let mut caught = true;
            let mut clean = true;
            for benign in [false, true] {
                let case = planted_case(class, benign, &mut ifp_testutil::Rng::new(7));
                let cfg = ConcConfig {
                    policy,
                    plan: Plan::Raw(case.plan.clone()),
                    schedule: Schedule::Explicit(case.schedule.clone()),
                };
                if check_outcome(&case, &run(&cfg)).is_err() {
                    if benign {
                        clean = false;
                    } else {
                        caught = false;
                    }
                }
            }
            cells.push(match (caught, clean) {
                (true, true) => "caught",
                (true, false) => "FP!",
                (false, _) => "missed",
            });
        }
        println!(
            "{:<18} {:>8} {:>8} {:>10}",
            class.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let workers = parse_workers(&mut args);

    // The trace mode stands alone: `tables trace [workload]`.
    if let Some(mode) = args.first().map(String::as_str) {
        if mode == "trace" || mode == "trace-jsonl" {
            let workload = args.get(1).map_or("treeadd", String::as_str);
            run_trace_mode(workload, mode == "trace-jsonl");
            return;
        }
        // So does the service table: `tables serve`.
        if mode == "serve" {
            run_serve_mode(workers);
            return;
        }
        // And the concurrent-execution summary: `tables concurrent`.
        if mode == "concurrent" {
            run_concurrent_mode();
            return;
        }
        // And the execution-tier comparison: `tables jit`.
        if mode == "jit" {
            eprintln!("comparing execution tiers over 18 workloads ({workers} workers)...");
            let cache = ifp_plancache::PlanCache::new();
            let rows = ifp_bench::jit::report_with_workers_cached(
                &ifp_workloads::all(),
                workers,
                Some(&cache),
            );
            println!(
                "{}",
                ifp_bench::jit::render_table_cached(&rows, Some(cache.stats()))
            );
            return;
        }
    }

    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    // Static sections first (cheap).
    if want("table1") {
        println!("{}", render::table1());
    }
    if want("table2") {
        println!("{}", render::table2());
    }
    if want("table3") {
        println!("{}", render::table3());
    }
    if want("fig13") {
        println!("{}", render::fig13());
    }
    if want("ablation") {
        println!("{}", ifp_bench::ablation::tag_split_table());
        println!(
            "{}",
            ifp_bench::ablation::granule_table(&ifp_bench::ablation::workload_size_sample())
        );
        println!("{}", ifp_bench::ablation::cache_sweep_with_workers(workers));
    }

    if want("juliet") {
        println!("Functional evaluation (Juliet-style suite, §5.1)");
        let cases = all_cases();
        println!(
            "  generated cases: {} ({} bad, {} good)",
            cases.len(),
            cases.len() / 2,
            cases.len() / 2
        );
        for mode in [
            Mode::Baseline,
            Mode::instrumented(AllocatorKind::Wrapped),
            Mode::instrumented(AllocatorKind::Subheap),
            Mode::Instrumented {
                allocator: AllocatorKind::Subheap,
                no_promote: true,
            },
        ] {
            let r = run_suite_with_workers(&cases, mode, workers);
            println!("  {mode}: {r}");
        }
        println!();
    }

    if want("temporal") {
        println!("Temporal evaluation (CWE-416 use-after-free / CWE-415 double-free)");
        let cases = temporal_cases();
        println!(
            "  generated cases: {} ({} bad, {} good)",
            cases.len(),
            cases.len() / 2,
            cases.len() / 2
        );
        for alloc in [AllocatorKind::Wrapped, AllocatorKind::Subheap] {
            for policy in TemporalPolicy::ALL {
                let r = run_temporal_suite_with_workers(
                    &cases,
                    Mode::instrumented(alloc),
                    policy,
                    workers,
                );
                println!("  instrumented[{alloc}] temporal={policy}: {r}");
            }
        }
        println!("\nComparator temporal detection (analytic baseline models)");
        for (name, row) in [
            ("asan", temporal_row(&mut Asan::new())),
            ("asan-drained", temporal_row(&mut Asan::with_quarantine(0))),
            ("mte(seed 7)", temporal_row(&mut Mte::with_seed(7))),
            ("softbound", temporal_row(&mut SoftBound::new())),
        ] {
            println!(
                "  {name:<13} use-after-free {}  double-free {}",
                if row.use_after_free {
                    "caught"
                } else {
                    "missed"
                },
                if row.double_free { "caught" } else { "missed" },
            );
        }
        println!();
        let costs = ifp_bench::temporal::measure_sample_with_workers(workers);
        print!("{}", ifp_bench::temporal::overhead_table(&costs));
        println!();
    }

    if want("analyze") {
        eprintln!("analyzing 18 workloads (elide off/on pairs, {workers} workers)...");
        let report = ifp_bench::analyze::report_with_workers(&ifp_workloads::all(), workers);
        println!("{}", ifp_bench::analyze::render_table(&report));
    }

    let needs_sweeps = ["table4", "fig10", "fig11", "fig12", "cache", "json"]
        .iter()
        .any(|s| want(s) || args.iter().any(|a| a == *s));
    if needs_sweeps {
        eprintln!("running 18 workloads x 5 configurations ({workers} workers)...");
        let workloads = ifp_workloads::all();
        let plan_cache = ifp_plancache::PlanCache::new();
        let t0 = std::time::Instant::now();
        let sweeps = sweep_all_with_workers_cached(
            &workloads,
            workers,
            ifp_vm::ExecTier::default(),
            Some(&plan_cache),
        );
        eprintln!("swept in {:.1}s", t0.elapsed().as_secs_f64());

        if want("table4") {
            println!("{}", render::table4(&sweeps));
        }
        if want("fig10") {
            println!("{}", render::fig10(&sweeps));
        }
        if want("fig11") {
            println!("{}", render::fig11(&sweeps));
        }
        if want("fig12") {
            // Paper: programs under 6 MB are excluded; our scaled inputs
            // use a proportionally scaled threshold.
            println!("{}", render::fig12(&sweeps, 16 * 1024));
        }
        if want("cache") {
            println!(
                "{}",
                render::cache_analysis(&sweeps, &["health", "ft", "ks", "em3d"])
            );
            // The artifact-cache telemetry rides the same section: the
            // sweep above already ran warm through a shared plan cache,
            // so its row is free. The Juliet row re-runs the whole
            // spatial suite five times, so it only joins when the
            // section was asked for by name — the default all-sections
            // run stays cheap.
            let mut rows = vec![ifp_bench::plan_cache::SuiteCache {
                suite: "workloads_sweep",
                runs: workloads.len() as u64 * 5,
                stats: plan_cache.stats(),
            }];
            if args.iter().any(|a| a == "cache" || a == "all") {
                rows.push(ifp_bench::plan_cache::juliet_suite(workers));
            }
            println!("{}", ifp_bench::plan_cache::render_table(&rows));
        }
        if args.iter().any(|a| a == "json") {
            println!("{}", render::json(&sweeps));
        }
    }
}
