//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `cargo run --release -p ifp-bench --bin tables -- [section ...]`
//! where sections are `table1 table2 table3 table4 fig10 fig11 fig12
//! fig13 juliet cache` or `all` (default).

use ifp_bench::{render, sweep_all};
use ifp_juliet::{all_cases, run_suite};
use ifp_vm::{AllocatorKind, Mode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    // Static sections first (cheap).
    if want("table1") {
        println!("{}", render::table1());
    }
    if want("table2") {
        println!("{}", render::table2());
    }
    if want("table3") {
        println!("{}", render::table3());
    }
    if want("fig13") {
        println!("{}", render::fig13());
    }
    if want("ablation") {
        println!("{}", ifp_bench::ablation::tag_split_table());
        println!(
            "{}",
            ifp_bench::ablation::granule_table(&ifp_bench::ablation::workload_size_sample())
        );
        println!("{}", ifp_bench::ablation::cache_sweep());
    }

    if want("juliet") {
        println!("Functional evaluation (Juliet-style suite, §5.1)");
        let cases = all_cases();
        println!("  generated cases: {} ({} bad, {} good)", cases.len(), cases.len() / 2, cases.len() / 2);
        for mode in [
            Mode::Baseline,
            Mode::instrumented(AllocatorKind::Wrapped),
            Mode::instrumented(AllocatorKind::Subheap),
            Mode::Instrumented {
                allocator: AllocatorKind::Subheap,
                no_promote: true,
            },
        ] {
            let r = run_suite(&cases, mode);
            println!("  {mode}: {r}");
        }
        println!();
    }

    let needs_sweeps = ["table4", "fig10", "fig11", "fig12", "cache", "json"]
        .iter()
        .any(|s| want(s) || args.iter().any(|a| a == *s));
    if needs_sweeps {
        eprintln!("running 18 workloads x 5 configurations...");
        let workloads = ifp_workloads::all();
        let t0 = std::time::Instant::now();
        let sweeps = sweep_all(&workloads);
        eprintln!("swept in {:.1}s", t0.elapsed().as_secs_f64());

        if want("table4") {
            println!("{}", render::table4(&sweeps));
        }
        if want("fig10") {
            println!("{}", render::fig10(&sweeps));
        }
        if want("fig11") {
            println!("{}", render::fig11(&sweeps));
        }
        if want("fig12") {
            // Paper: programs under 6 MB are excluded; our scaled inputs
            // use a proportionally scaled threshold.
            println!("{}", render::fig12(&sweeps, 16 * 1024));
        }
        if want("cache") {
            println!(
                "{}",
                render::cache_analysis(&sweeps, &["health", "ft", "ks", "em3d"])
            );
        }
        if args.iter().any(|a| a == "json") {
            println!("{}", render::json(&sweeps));
        }
    }
}
