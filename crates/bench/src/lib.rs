//! Shared harness code for the `tables` binary and the self-timed benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod analyze;
pub mod jit;
pub mod plan_cache;
pub mod render;
pub mod temporal;

use ifp::eval::ModeSweep;
use ifp_plancache::PlanCache;
use ifp_testutil::{default_workers, par_map};
use ifp_vm::ExecTier;
use ifp_workloads::Workload;
use std::fmt;

/// A failure from one workload's sweep: the workload keeps its identity so
/// a single bad workload no longer masks the results of the other 17.
#[derive(Debug)]
pub struct SweepError {
    /// The workload that failed.
    pub workload: String,
    /// What went wrong (VM error or worker panic payload).
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.workload, self.message)
    }
}

/// Runs the mode sweep for every workload on up to `workers` threads,
/// preserving Table 4 order in the result — the output is identical for
/// any worker count (each sweep is an independent simulation; results
/// merge by input index).
///
/// Every workload runs to completion even when siblings fail: a worker
/// panic or VM error is captured per workload instead of tearing down the
/// whole scope, and all failures are reported together.
///
/// # Errors
///
/// The list of per-workload failures, one entry per failed workload.
pub fn try_sweep_all_with_workers(
    workloads: &[Workload],
    workers: usize,
) -> Result<Vec<ModeSweep>, Vec<SweepError>> {
    try_sweep_all_with_workers_cached(workloads, workers, ExecTier::default(), None)
}

/// [`try_sweep_all_with_workers`] on a chosen execution tier through an
/// optional shared [`PlanCache`]. Tier and cache are host-speed knobs:
/// the sweeps are bit-identical for any combination (golden-gated). The
/// cache pays off even within one sweep — each workload's five modes
/// need only two artifacts — and across suites when the caller shares
/// the handle.
///
/// # Errors
///
/// The list of per-workload failures, one entry per failed workload.
pub fn try_sweep_all_with_workers_cached(
    workloads: &[Workload],
    workers: usize,
    tier: ExecTier,
    cache: Option<&PlanCache>,
) -> Result<Vec<ModeSweep>, Vec<SweepError>> {
    let slots = par_map(workloads, workers, |w| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let program = w.build_default();
            ModeSweep::run_with_tier_cached(w.name, &program, tier, cache)
                .map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|panic| Err(panic_message(&panic)))
    });
    let mut sweeps = Vec::with_capacity(workloads.len());
    let mut errors = Vec::new();
    for (w, slot) in workloads.iter().zip(slots) {
        match slot {
            Ok(s) => sweeps.push(s),
            Err(message) => errors.push(SweepError {
                workload: w.name.to_string(),
                message,
            }),
        }
    }
    if errors.is_empty() {
        Ok(sweeps)
    } else {
        Err(errors)
    }
}

/// [`try_sweep_all_with_workers`] at the host's available parallelism.
///
/// # Errors
///
/// The list of per-workload failures, one entry per failed workload.
pub fn try_sweep_all(workloads: &[Workload]) -> Result<Vec<ModeSweep>, Vec<SweepError>> {
    try_sweep_all_with_workers(workloads, default_workers())
}

/// [`try_sweep_all_with_workers`], panicking with *all* failures when any
/// workload fails (the `tables` binary's behaviour).
#[must_use]
pub fn sweep_all_with_workers(workloads: &[Workload], workers: usize) -> Vec<ModeSweep> {
    match try_sweep_all_with_workers(workloads, workers) {
        Ok(sweeps) => sweeps,
        Err(errors) => {
            let lines: Vec<String> = errors.iter().map(ToString::to_string).collect();
            panic!(
                "{} workload sweep(s) failed:\n  {}",
                lines.len(),
                lines.join("\n  ")
            );
        }
    }
}

/// [`sweep_all_with_workers`] at the host's available parallelism.
#[must_use]
pub fn sweep_all(workloads: &[Workload]) -> Vec<ModeSweep> {
    sweep_all_with_workers(workloads, default_workers())
}

/// [`sweep_all_with_workers`] on a chosen tier through an optional
/// shared [`PlanCache`], panicking with *all* failures when any workload
/// fails (the `tables` binary's behaviour).
#[must_use]
pub fn sweep_all_with_workers_cached(
    workloads: &[Workload],
    workers: usize,
    tier: ExecTier,
    cache: Option<&PlanCache>,
) -> Vec<ModeSweep> {
    match try_sweep_all_with_workers_cached(workloads, workers, tier, cache) {
        Ok(sweeps) => sweeps,
        Err(errors) => {
            let lines: Vec<String> = errors.iter().map(ToString::to_string).collect();
            panic!(
                "{} workload sweep(s) failed:\n  {}",
                lines.len(),
                lines.join("\n  ")
            );
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

/// Builds the standard small promote fixture used by the microbenches: a
/// memory system with one local-offset object carrying the Figure 9
/// layout table, plus a subheap block and a global-table row describing
/// the same region.
pub mod fixtures {
    use ifp_hw::CtrlRegs;
    use ifp_mem::MemSystem;
    use ifp_meta::{GlobalTableRow, LayoutTableBuilder, LocalOffsetMeta, SubheapCtrl, SubheapMeta};
    use ifp_tag::{
        GlobalTableTag, LocalOffsetTag, SchemeSel, SubheapTag, TaggedPtr, LOCAL_OFFSET_GRANULE,
    };

    /// A ready-to-promote machine state with pointers for each scheme.
    pub struct PromoteFixture {
        /// The memory system.
        pub mem: MemSystem,
        /// Control registers.
        pub ctrl: CtrlRegs,
        /// Local-offset pointer (object bounds).
        pub local: TaggedPtr,
        /// Local-offset pointer with a subobject index (narrowing).
        pub local_narrow: TaggedPtr,
        /// Subheap pointer.
        pub subheap: TaggedPtr,
        /// Global-table pointer.
        pub global: TaggedPtr,
        /// A legacy pointer.
        pub legacy: TaggedPtr,
    }

    /// Builds the fixture.
    #[must_use]
    pub fn promote_fixture() -> PromoteFixture {
        let mut mem = MemSystem::with_default_l1();
        mem.mem.map(0x1000, 0x20000);
        let mut ctrl = CtrlRegs::new(0xa000);
        let key = ctrl.mac_key;

        // Figure 9 layout table at 0x8000.
        let mut b = LayoutTableBuilder::new(24);
        b.child(0, 0, 4, 4).unwrap();
        let arr = b.child(0, 4, 20, 8).unwrap();
        b.child(arr, 0, 4, 4).unwrap();
        b.child(arr, 4, 8, 4).unwrap();
        b.child(0, 20, 24, 4).unwrap();
        let table = b.build();
        mem.mem.write_bytes(0x8000, &table.to_bytes()).unwrap();

        // Local offset object at 0x2000.
        let base = 0x2000u64;
        let meta_addr = LocalOffsetMeta::meta_addr_for(base, 24);
        let meta = LocalOffsetMeta::new(24, 0x8000, meta_addr, key);
        mem.mem.write_bytes(meta_addr, &meta.to_bytes()).unwrap();
        let tag = LocalOffsetTag {
            granule_offset: ((meta_addr - base) / LOCAL_OFFSET_GRANULE) as u8,
            subobject_index: 0,
        };
        let local = TaggedPtr::from_addr(base)
            .with_scheme(SchemeSel::LocalOffset)
            .with_scheme_meta(tag.encode().unwrap());
        let ntag = LocalOffsetTag {
            granule_offset: 1,
            subobject_index: 4, // S.array[].v4
        };
        let local_narrow = TaggedPtr::from_addr(base + 16)
            .with_scheme(SchemeSel::LocalOffset)
            .with_scheme_meta(ntag.encode().unwrap());

        // Subheap block at 0x4000.
        ctrl.set_subheap(
            0,
            SubheapCtrl {
                block_shift: 12,
                meta_offset: 0,
            },
        );
        let block = 0x4000u64;
        let sh_meta = SubheapMeta::new(32, 32 + 48 * 16, 48, 40, 0x8000, block, key);
        mem.mem.write_bytes(block, &sh_meta.to_bytes()).unwrap();
        let stag = SubheapTag {
            ctrl_index: 0,
            subobject_index: 0,
        };
        let subheap = TaggedPtr::from_addr(block + 32 + 48 * 3)
            .with_scheme(SchemeSel::Subheap)
            .with_scheme_meta(stag.encode().unwrap());

        // Global row 7 describing 0x6000.
        mem.mem.map(0xa000, 0x10000);
        let row = GlobalTableRow {
            base: 0x6000,
            size: 4096,
            layout_table: 0,
            valid: true,
        };
        mem.mem
            .write_bytes(0xa000 + 7 * 16, &row.to_bytes())
            .unwrap();
        let gtag = GlobalTableTag { table_index: 7 };
        let global = TaggedPtr::from_addr(0x6000)
            .with_scheme(SchemeSel::GlobalTable)
            .with_scheme_meta(gtag.encode().unwrap());

        PromoteFixture {
            mem,
            ctrl,
            local,
            local_narrow,
            subheap,
            global,
            legacy: TaggedPtr::from_addr(0x1234),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::promote_fixture;
    use ifp_hw::{IfpUnit, PromoteKind};

    #[test]
    fn parallel_sweep_is_byte_identical_to_single_thread() {
        // Render a real sweep subset through the JSON emitter under 1 and
        // N workers: the output strings must match byte for byte.
        let workloads: Vec<_> = ifp_workloads::all().into_iter().take(2).collect();
        let one = crate::render::json(&crate::sweep_all_with_workers(&workloads, 1));
        let many = crate::render::json(&crate::sweep_all_with_workers(&workloads, 4));
        assert_eq!(one, many);
    }

    #[test]
    fn parallel_cache_sweep_matches_single_thread() {
        assert_eq!(
            crate::ablation::cache_sweep_with_workers(1),
            crate::ablation::cache_sweep_with_workers(4)
        );
    }

    #[test]
    fn fixture_pointers_promote_as_labelled() {
        let mut fx = promote_fixture();
        let unit = IfpUnit::default();
        for (ptr, kind) in [
            (fx.local, PromoteKind::Valid),
            (fx.local_narrow, PromoteKind::Valid),
            (fx.subheap, PromoteKind::Valid),
            (fx.global, PromoteKind::Valid),
            (fx.legacy, PromoteKind::LegacyBypass),
        ] {
            let r = unit.promote(ptr, &mut fx.mem, &fx.ctrl).unwrap();
            assert_eq!(r.kind, kind, "{ptr:?}");
        }
    }
}
