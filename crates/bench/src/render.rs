//! Text rendering for the regenerated tables and figures.

use ifp::eval::{geomean_overhead, ModeSweep};
use ifp::taxonomy;
use ifp_hw::area::AreaModel;
use ifp_vm::RunStats;

fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

fn sci(x: u64) -> String {
    if x >= 1_000_000 {
        format!(
            "{:.2}e{}",
            x as f64 / 10f64.powi((x as f64).log10() as i32),
            (x as f64).log10() as i32
        )
    } else {
        x.to_string()
    }
}

/// Renders Table 1 (defense taxonomy).
#[must_use]
pub fn table1() -> String {
    let mut out = String::from(
        "Table 1: Comparison between In-Fat Pointer and related work\n\
         | Defense | Tagged ptr | Metadata subject | Granularity | Compat loss | Required feature |\n\
         |---|---|---|---|---|---|\n",
    );
    for r in taxonomy::table1() {
        out.push_str(&format!(
            "| {} | {} | {:?} | {:?} | {:?} | {:?} |\n",
            r.name,
            if r.tagged_pointer { "yes" } else { "-" },
            r.subject,
            r.granularity,
            r.compat_loss,
            r.required
        ));
    }
    out
}

/// Renders Table 2 (object metadata schemes).
#[must_use]
pub fn table2() -> String {
    let mut out = String::from(
        "Table 2: Object metadata schemes comparison\n\
         | Scheme | Constrains base | Max object size | Max objects | Use scenario |\n\
         |---|---|---|---|---|\n",
    );
    for r in taxonomy::table2() {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.name,
            if r.constrains_base { "B" } else { "-" },
            r.max_object_size
                .map_or("-".to_string(), |v| format!("{v} B")),
            r.max_objects.map_or("-".to_string(), |v| v.to_string()),
            r.use_scenario
        ));
    }
    out
}

/// Renders Table 3 (core instructions).
#[must_use]
pub fn table3() -> String {
    let mut out = String::from(
        "Table 3: Core instructions from In-Fat Pointer\n\
         | Mnemonic | Description | Unit | Class |\n\
         |---|---|---|---|\n",
    );
    for i in taxonomy::table3() {
        out.push_str(&format!(
            "| {}{} | {} | {} | {} |\n",
            i.mnemonic(),
            if i.has_variants() { "*" } else { "" },
            i.description(),
            if i.uses_ifp_unit() {
                "IFP unit"
            } else {
                "ALU/LSU"
            },
            i.class()
        ));
    }
    out.push_str("(* multiple variants exist)\n");
    out
}

/// Renders Table 4 (dynamic event counts) from the sweeps.
#[must_use]
pub fn table4(sweeps: &[ModeSweep]) -> String {
    let mut out = String::from(
        "Table 4: Dynamic event counts (subheap-version object statistics)\n\
         | Benchmark | Globals (%LT) | Locals (%LT) | Heap objs (%LT) | Valid promote (% of total) | Base instrs | Subheap | Wrapped |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for s in sweeps {
        let st = &s.subheap;
        let fmt_obj = |o: &ifp_vm::ObjectStats| {
            if o.objects == 0 {
                "0".to_string()
            } else if o.with_layout_table == 0 {
                sci(o.objects)
            } else {
                format!("{} ({:.0}%)", sci(o.objects), o.lt_percent())
            }
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} ({:.0}%) | {} | {:.2}x | {:.2}x |\n",
            s.name,
            fmt_obj(&st.global_objects),
            fmt_obj(&st.stack_objects),
            fmt_obj(&st.heap_objects),
            sci(st.promotes.valid),
            st.promotes.valid_ratio() * 100.0,
            sci(s.baseline.total_instrs()),
            s.instr_ratio(&s.subheap),
            s.instr_ratio(&s.wrapped),
        ));
    }
    out
}

/// Renders Figure 10 (runtime overhead) as a table of percentages.
#[must_use]
pub fn fig10(sweeps: &[ModeSweep]) -> String {
    let mut out = String::from(
        "Figure 10: Performance overhead of all benchmarks\n\
         | Benchmark | Subheap | Wrapped | Subheap (no promote) | Wrapped (no promote) |\n\
         |---|---|---|---|---|\n",
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for s in sweeps {
        let vals = [
            s.runtime_overhead(&s.subheap),
            s.runtime_overhead(&s.wrapped),
            s.runtime_overhead(&s.subheap_nopromote),
            s.runtime_overhead(&s.wrapped_nopromote),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            s.name,
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            pct(vals[3])
        ));
    }
    out.push_str(&format!(
        "| geo-mean | {} | {} | {} | {} |\n",
        pct(geomean_overhead(&cols[0])),
        pct(geomean_overhead(&cols[1])),
        pct(geomean_overhead(&cols[2])),
        pct(geomean_overhead(&cols[3])),
    ));
    out
}

/// Renders Figure 11 (new-instruction breakdown, % of baseline instrs).
#[must_use]
pub fn fig11(sweeps: &[ModeSweep]) -> String {
    let mut out = String::from(
        "Figure 11: Dynamic instruction counts for In-Fat Pointer instructions\n\
         (subheap configuration, as % of baseline instructions)\n\
         | Benchmark | Promote | IFP arithmetic | Bounds ld/st | Total |\n\
         |---|---|---|---|---|\n",
    );
    for s in sweeps {
        let b = s.instr_breakdown(&s.subheap);
        out.push_str(&format!(
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% |\n",
            s.name,
            b.promote * 100.0,
            b.arithmetic * 100.0,
            b.bounds_ls * 100.0,
            b.total() * 100.0
        ));
    }
    out
}

/// Renders Figure 12 (memory overhead). Benchmarks with tiny footprints
/// are excluded like the paper's three sub-6MB programs.
#[must_use]
pub fn fig12(sweeps: &[ModeSweep], min_footprint: u64) -> String {
    let mut out = String::from(
        "Figure 12: Memory overhead of applicable benchmarks (heap footprint)\n\
         | Benchmark | Subheap | Wrapped |\n\
         |---|---|---|\n",
    );
    let mut sub = Vec::new();
    let mut wrp = Vec::new();
    let mut excluded = Vec::new();
    for s in sweeps {
        if s.baseline.heap_footprint_peak < min_footprint {
            excluded.push(s.name.clone());
            continue;
        }
        let so = s.memory_overhead(&s.subheap);
        let wo = s.memory_overhead(&s.wrapped);
        sub.push(so);
        wrp.push(wo);
        out.push_str(&format!("| {} | {} | {} |\n", s.name, pct(so), pct(wo)));
    }
    out.push_str(&format!(
        "| geo-mean | {} | {} |\n",
        pct(geomean_overhead(&sub)),
        pct(geomean_overhead(&wrp))
    ));
    if !excluded.is_empty() {
        out.push_str(&format!(
            "(excluded, footprint below threshold: {})\n",
            excluded.join(", ")
        ));
    }
    out
}

/// Renders Figure 13 (LUT increase decomposition).
#[must_use]
pub fn fig13() -> String {
    let m = AreaModel::prototype();
    let mut out = String::from(
        "Figure 13: LUT increase in the modified processor\n\
         | Module | Stage | Vanilla LUTs | Growth | Share of increase |\n\
         |---|---|---|---|---|\n",
    );
    let total_growth = m.growth_luts() as f64;
    for module in m.modules() {
        out.push_str(&format!(
            "| {} | {} | {} | +{} | {:.0}% |\n",
            module.name,
            module.stage,
            module.vanilla_luts,
            module.growth_luts,
            module.growth_luts as f64 / total_growth * 100.0
        ));
    }
    out.push_str(&format!(
        "| TOTAL |  | {} | +{} | ({} -> {} LUTs, {:+.0}%) |\n",
        m.vanilla_luts(),
        m.growth_luts(),
        m.vanilla_luts(),
        m.total_luts(),
        m.lut_increase_ratio() * 100.0
    ));
    for (stage, share) in m.growth_share_by_stage() {
        out.push_str(&format!(
            "  {stage} stage share of increase: {:.0}%\n",
            share * 100.0
        ));
    }
    let u = m.ifp_unit();
    out.push_str(&format!(
        "  IFP unit internals: layout walker {} LUTs ({:.0}%), schemes {} LUTs ({:.0}%)\n",
        u.layout_walker,
        u.layout_walker as f64 / u.total() as f64 * 100.0,
        u.schemes_total(),
        u.schemes_total() as f64 / u.total() as f64 * 100.0
    ));
    out.push_str(&format!(
        "  Ablations: no layout walker -> {} LUTs; no bounds registers -> {} LUTs ({:+.0}%)\n",
        m.without_layout_walker().total_luts(),
        m.without_bounds_registers().total_luts(),
        m.without_bounds_registers().lut_increase_ratio() * 100.0
    ));
    out
}

/// Renders the §5.2.2 cache analysis for the named workloads.
#[must_use]
pub fn cache_analysis(sweeps: &[ModeSweep], names: &[&str]) -> String {
    let mut out = String::from(
        "Cache behaviour (the §5.2.2 analysis)\n\
         | Benchmark | Baseline miss ratio | Subheap miss increase | Wrapped miss increase |\n\
         |---|---|---|---|\n",
    );
    let inc = |base: &RunStats, other: &RunStats| {
        if base.l1.misses == 0 {
            0.0
        } else {
            other.l1.misses as f64 / base.l1.misses as f64 - 1.0
        }
    };
    for s in sweeps.iter().filter(|s| names.contains(&s.name.as_str())) {
        out.push_str(&format!(
            "| {} | {:.3} | {} | {} |\n",
            s.name,
            s.baseline.l1.miss_ratio(),
            pct(inc(&s.baseline, &s.subheap)),
            pct(inc(&s.baseline, &s.wrapped))
        ));
    }
    out
}

/// Serializes the sweeps as a JSON document (hand-rolled writer — the
/// data is flat numbers, no serializer dependency needed). The schema is
/// stable: one object per workload with one sub-object per configuration.
#[must_use]
pub fn json(sweeps: &[ModeSweep]) -> String {
    fn stats(s: &RunStats) -> String {
        format!(
            "{{\"instructions\": {}, \"cycles\": {}, \"promotes\": {}, \"valid_promotes\": {}, \
             \"ifp_arith\": {}, \"bounds_ls\": {}, \"l1_misses\": {}, \"heap_peak\": {}, \
             \"narrow_ok\": {}, \"narrow_coarsened\": {}}}",
            s.total_instrs(),
            s.cycles,
            s.promotes.total,
            s.promotes.valid,
            s.ifp_arith_instrs,
            s.bounds_ls_instrs,
            s.l1.misses,
            s.heap_footprint_peak,
            s.promotes.narrow_succeeded,
            s.promotes.narrow_coarsened,
        )
    }
    let mut out = String::from("[\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"baseline\": {}, \"subheap\": {}, \"wrapped\": {}, \
             \"subheap_nopromote\": {}, \"wrapped_nopromote\": {}}}{}\n",
            s.name,
            stats(&s.baseline),
            stats(&s.subheap),
            stats(&s.wrapped),
            stats(&s.subheap_nopromote),
            stats(&s.wrapped_nopromote),
            if i + 1 == sweeps.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render_the_key_rows() {
        assert!(table1().contains("| In-Fat Pointer | yes | Object | Subobject | None | None |"));
        assert!(table2().contains("| Local Offset Scheme | - | 1008 B |"));
        assert!(table3().contains("| promote | pointer bounds retrieval | IFP unit |"));
        assert!(fig13().contains("37088 -> 59261"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let w = ifp_workloads::by_name("treeadd").unwrap();
        let sweep = ifp::eval::ModeSweep::run("treeadd", &(w.build)(5)).unwrap();
        let doc = json(&[sweep]);
        assert!(doc.starts_with('['));
        assert!(doc.ends_with(']'));
        assert_eq!(doc.matches("\"name\"").count(), 1);
        assert_eq!(doc.matches("\"cycles\"").count(), 5);
        // Balanced braces.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes);
    }
}
