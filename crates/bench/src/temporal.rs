//! Temporal-policy overhead: what each enforcement policy costs on real
//! workloads, next to the spatial-only (`off`) configuration.
//!
//! Each sampled workload runs instrumented (subheap) once per
//! [`TemporalPolicy`]. The columns report the modeled costs that differ
//! between policies: cycle overhead relative to `off` (the liveness
//! check rides the existing implicit-check path, so the delta is the
//! temporal bookkeeping), liveness checks performed, allocations
//! stamped / locks revoked, and the quarantine's deferred-reuse memory
//! overhead (peak heap footprint vs `off` — the classic
//! quarantine-vs-cycle-count trade the baselines table shows
//! analytically).

use ifp_temporal::TemporalPolicy;
use ifp_vm::{run, AllocatorKind, Mode, RunStats, VmConfig};

/// The allocation-heavy workload sample the overhead table sweeps.
pub const SAMPLE: [&str; 4] = ["treeadd", "health", "mst", "ft"];

/// One (workload, policy) measurement.
#[derive(Clone, Debug)]
pub struct TemporalCost {
    /// Workload name.
    pub workload: &'static str,
    /// The policy measured.
    pub policy: TemporalPolicy,
    /// Full run statistics.
    pub stats: RunStats,
}

/// Runs the sample under every policy (instrumented, subheap) on up to
/// `workers` threads. Each (workload, policy) cell is an independent
/// simulation; results keep `SAMPLE` × [`TemporalPolicy::ALL`] order for
/// any worker count.
///
/// # Panics
///
/// Panics if a sampled workload is unknown or fails to run — the sample
/// is fixed and every workload must complete under every policy (zero
/// temporal violations on correct programs is itself part of the
/// claim).
#[must_use]
pub fn measure_sample_with_workers(workers: usize) -> Vec<TemporalCost> {
    let cells: Vec<(&'static str, TemporalPolicy)> = SAMPLE
        .iter()
        .flat_map(|&name| TemporalPolicy::ALL.into_iter().map(move |p| (name, p)))
        .collect();
    ifp_testutil::par_map(&cells, workers, |&(name, policy)| {
        let w = ifp_workloads::by_name(name).expect("sample workload exists");
        let program = w.build_default();
        let mut cfg = VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
        cfg.temporal = policy;
        let r = run(&program, &cfg).unwrap_or_else(|e| panic!("{name} failed under {policy}: {e}"));
        assert_eq!(
            r.stats.temporal.violations, 0,
            "{name}: correct workload flagged under {policy}"
        );
        TemporalCost {
            workload: w.name,
            policy,
            stats: r.stats,
        }
    })
}

/// [`measure_sample_with_workers`] on a single thread.
#[must_use]
pub fn measure_sample() -> Vec<TemporalCost> {
    measure_sample_with_workers(1)
}

fn pct(new: u64, base: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        (new as f64 / base as f64 - 1.0) * 100.0
    }
}

/// Renders the overhead table from [`measure_sample`] output.
#[must_use]
pub fn overhead_table(costs: &[TemporalCost]) -> String {
    let mut s = String::new();
    s.push_str("Temporal-policy overhead (instrumented subheap, vs `off`)\n");
    s.push_str(&format!(
        "  {:<10} {:<11} {:>9} {:>10} {:>9} {:>9} {:>11}\n",
        "workload", "policy", "cycles%", "checks", "stamped", "revoked", "footprint%"
    ));
    for name in SAMPLE {
        let Some(base) = costs
            .iter()
            .find(|c| c.workload == name && c.policy == TemporalPolicy::Off)
        else {
            continue;
        };
        for c in costs.iter().filter(|c| c.workload == name) {
            let t = c.stats.temporal;
            s.push_str(&format!(
                "  {:<10} {:<11} {:>8.2}% {:>10} {:>9} {:>9} {:>10.2}%\n",
                c.workload,
                c.policy.name(),
                pct(c.stats.cycles, base.stats.cycles),
                t.checks,
                t.stamped,
                t.revoked,
                pct(c.stats.heap_footprint_peak, base.stats.heap_footprint_peak),
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn costs() -> &'static [TemporalCost] {
        static COSTS: OnceLock<Vec<TemporalCost>> = OnceLock::new();
        COSTS.get_or_init(measure_sample)
    }

    #[test]
    fn sample_runs_clean_under_every_policy() {
        let costs = costs();
        assert_eq!(costs.len(), SAMPLE.len() * TemporalPolicy::ALL.len());
        for c in costs {
            if c.policy == TemporalPolicy::Off {
                // Off is bit-identical to the pre-temporal simulator:
                // no stamps, no checks.
                assert_eq!(c.stats.temporal, Default::default(), "{}", c.workload);
            } else {
                assert!(c.stats.temporal.stamped > 0, "{}", c.workload);
                assert_eq!(c.stats.temporal.violations, 0, "{}", c.workload);
            }
        }
    }

    #[test]
    fn liveness_checks_cost_cycles() {
        // ROADMAP item: the lock/key comparison is no longer modeled as
        // free — every check charges `CycleModel::temporal_check`, so an
        // enforcing policy must show a cycle overhead over `off` of at
        // least one cycle per check performed.
        let costs = costs();
        for name in SAMPLE {
            let by = |p: TemporalPolicy| {
                costs
                    .iter()
                    .find(|c| c.workload == name && c.policy == p)
                    .expect("measured")
                    .stats
                    .clone()
            };
            let off = by(TemporalPolicy::Off);
            let key = by(TemporalPolicy::KeyCheck);
            assert!(key.temporal.checks > 0, "{name}: no checks performed");
            assert!(
                key.cycles >= off.cycles + key.temporal.checks,
                "{name}: checks not charged ({} vs {} + {})",
                key.cycles,
                off.cycles,
                key.temporal.checks
            );
        }
    }

    #[test]
    fn quarantine_defers_reuse_visibly() {
        let costs = costs();
        // At least one allocation-churning workload must show a larger
        // peak heap footprint under quarantine than under off: deferred
        // reuse is the mechanism, footprint is its cost.
        let grew = SAMPLE.iter().any(|name| {
            let by = |p: TemporalPolicy| {
                costs
                    .iter()
                    .find(|c| &c.workload == name && c.policy == p)
                    .expect("measured")
                    .stats
                    .heap_footprint_peak
            };
            by(TemporalPolicy::Quarantine) > by(TemporalPolicy::Off)
        });
        assert!(grew, "quarantine never changed any footprint");
    }

    #[test]
    fn table_renders_every_row() {
        let table = overhead_table(costs());
        for name in SAMPLE {
            assert!(table.contains(name), "{table}");
        }
        for p in TemporalPolicy::ALL {
            assert!(table.contains(p.name()), "{table}");
        }
    }
}
