//! The `analyze` section: static-analysis results over the seed suites.
//!
//! For every workload this runs the `ifp-analyze` verifier plus interval
//! analysis, then executes the subheap configuration twice — elision off
//! and on — and reports dynamic check counts and the modeled cycles the
//! statically proven elisions save. Verifier diagnostics are expected to
//! be zero across the seed suites (workloads and Juliet generators emit
//! well-formed IR); a nonzero count here is a regression.

use ifp_testutil::{default_workers, par_map};
use ifp_vm::{run, AllocatorKind, Mode, VmConfig};
use ifp_workloads::Workload;

/// Static + dynamic analysis results for one workload.
#[derive(Clone, Debug)]
pub struct WorkloadAnalysis {
    /// Benchmark name.
    pub workload: &'static str,
    /// Verifier diagnostics on the workload's program (expected 0).
    pub verifier_diags: usize,
    /// Accesses statically proven in bounds.
    pub proven_in: u64,
    /// Of those, proofs that rest on an inter-procedural summary
    /// (parameter windows or call-return facts) rather than purely
    /// local reasoning.
    pub summary_hits: u64,
    /// Accesses statically proven out of bounds (lints; expected 0).
    pub proven_oob: u64,
    /// Dynamic checked dereferences with elision off (subheap mode).
    pub checks_total: u64,
    /// Of those, dynamically skipped when elision is on.
    pub checks_elided: u64,
    /// Tag-updating GEPs executed as plain arithmetic when elision is on.
    pub geps_elided: u64,
    /// Modeled cycles, elision off.
    pub cycles_off: u64,
    /// Modeled cycles, elision on.
    pub cycles_on: u64,
}

impl WorkloadAnalysis {
    /// Modeled cycles removed by elision (0 when elision found nothing).
    #[must_use]
    pub fn cycles_saved(&self) -> u64 {
        self.cycles_off.saturating_sub(self.cycles_on)
    }

    /// Percentage of checked dereferences elided.
    #[must_use]
    pub fn elided_percent(&self) -> f64 {
        if self.checks_total == 0 {
            0.0
        } else {
            100.0 * self.checks_elided as f64 / self.checks_total as f64
        }
    }
}

/// The whole section: per-workload rows plus the Juliet verifier sweep.
#[derive(Clone, Debug)]
pub struct AnalyzeReport {
    /// One row per workload, Table 4 order.
    pub workloads: Vec<WorkloadAnalysis>,
    /// Juliet cases whose program the verifier accepted.
    pub juliet_cases: usize,
    /// Total verifier diagnostics across all Juliet cases (expected 0).
    pub juliet_verifier_diags: usize,
}

impl AnalyzeReport {
    /// Modeled cycles saved across every workload.
    #[must_use]
    pub fn total_cycles_saved(&self) -> u64 {
        self.workloads
            .iter()
            .map(WorkloadAnalysis::cycles_saved)
            .sum()
    }

    /// Verifier diagnostics across workloads and Juliet cases.
    #[must_use]
    pub fn total_verifier_diags(&self) -> usize {
        self.juliet_verifier_diags
            + self
                .workloads
                .iter()
                .map(|w| w.verifier_diags)
                .sum::<usize>()
    }
}

fn subheap_config(elide: bool) -> VmConfig {
    let mut cfg = VmConfig::with_mode(Mode::instrumented(AllocatorKind::Subheap));
    cfg.elide_checks = elide;
    cfg
}

/// Analyzes one workload: static report plus the off/on run pair.
///
/// # Panics
///
/// Panics when the workload fails to run — the seed workloads always
/// complete, so a failure here is a harness regression.
#[must_use]
pub fn analyze_workload(w: &Workload) -> WorkloadAnalysis {
    let program = w.build_default();
    let report = ifp_analyze::analyze(&program);
    let off = run(&program, &subheap_config(false))
        .unwrap_or_else(|e| panic!("{} (elide off): {e}", w.name));
    let on = run(&program, &subheap_config(true))
        .unwrap_or_else(|e| panic!("{} (elide on): {e}", w.name));
    assert_eq!(
        off.output, on.output,
        "{}: elision changed program output",
        w.name
    );
    WorkloadAnalysis {
        workload: w.name,
        verifier_diags: report.verifier.len(),
        proven_in: report.proven_in,
        summary_hits: report.summary_hits,
        proven_oob: report.proven_oob,
        checks_total: on.stats.elision.checks_total,
        checks_elided: on.stats.elision.checks_elided,
        geps_elided: on.stats.elision.geps_elided,
        cycles_off: off.stats.cycles,
        cycles_on: on.stats.cycles,
    }
}

/// Builds the report over `workloads` on up to `workers` threads. Each
/// workload is an independent pair of simulations, so the result is
/// identical for any worker count.
#[must_use]
pub fn report_with_workers(workloads: &[Workload], workers: usize) -> AnalyzeReport {
    let rows = par_map(workloads, workers, analyze_workload);
    let cases = ifp_juliet::all_cases();
    let diag_counts = par_map(&cases, workers, |case| {
        ifp_analyze::verify(&case.program).len()
    });
    AnalyzeReport {
        workloads: rows,
        juliet_cases: cases.len(),
        juliet_verifier_diags: diag_counts.iter().sum(),
    }
}

/// [`report_with_workers`] at the host's available parallelism.
#[must_use]
pub fn report(workloads: &[Workload]) -> AnalyzeReport {
    report_with_workers(workloads, default_workers())
}

/// Renders the section as a fixed-width table.
#[must_use]
pub fn render_table(report: &AnalyzeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "Static analysis (verifier + interval-domain + interprocedural check elision, subheap)\n",
    );
    out.push_str(
        "  workload      diags  proven  sum-hits  checks-total  checks-elided  elided%  cycles-saved\n",
    );
    for w in &report.workloads {
        let _ = writeln!(
            out,
            "  {:<12} {:>6} {:>7} {:>8} {:>13} {:>14} {:>7.1}% {:>13}",
            w.workload,
            w.verifier_diags,
            w.proven_in,
            w.summary_hits,
            w.checks_total,
            w.checks_elided,
            w.elided_percent(),
            w.cycles_saved()
        );
    }
    let _ = writeln!(
        out,
        "  juliet: {} cases, {} verifier diagnostics",
        report.juliet_cases, report.juliet_verifier_diags
    );
    let _ = writeln!(
        out,
        "  total: {} verifier diagnostics, {} modeled cycles saved",
        report.total_verifier_diags(),
        report.total_cycles_saved()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_workloads_verify_clean_and_elide_some_checks() {
        // Two representative workloads: an array-walking kernel and a
        // pointer-chasing one. Both must verify clean; across the pair
        // the analysis must prove something and save modeled cycles.
        let workloads: Vec<Workload> = ifp_workloads::all()
            .into_iter()
            .filter(|w| w.name == "em3d" || w.name == "anagram")
            .collect();
        assert!(!workloads.is_empty());
        let rows: Vec<WorkloadAnalysis> = workloads.iter().map(analyze_workload).collect();
        for row in &rows {
            assert_eq!(row.verifier_diags, 0, "{}", row.workload);
            assert_eq!(row.proven_oob, 0, "{}", row.workload);
            assert!(row.cycles_on <= row.cycles_off, "{}", row.workload);
        }
        let saved: u64 = rows.iter().map(WorkloadAnalysis::cycles_saved).sum();
        assert!(saved > 0, "no cycles saved across {rows:?}");
    }

    #[test]
    fn parallel_report_matches_single_thread() {
        let workloads: Vec<Workload> = ifp_workloads::all().into_iter().take(2).collect();
        let one = report_with_workers(&workloads, 1);
        let many = report_with_workers(&workloads, 4);
        assert_eq!(one.juliet_verifier_diags, many.juliet_verifier_diags);
        for (a, b) in one.workloads.iter().zip(&many.workloads) {
            assert_eq!(a.checks_elided, b.checks_elided);
            assert_eq!(a.cycles_saved(), b.cycles_saved());
        }
    }
}
