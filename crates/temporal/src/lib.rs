//! Lock-and-key temporal safety modeling for the In-Fat Pointer
//! reproduction.
//!
//! The paper's design is spatial-only, but its metadata machinery is the
//! natural substrate for temporal enforcement: the per-allocation
//! metadata record (whose MAC the wrapped allocator already zeroes on
//! free) acts as the **lock**, and a per-allocation **key** — the
//! allocation's position in the global allocation order — travels with
//! the pointer while it stays in registers. This crate is the pure
//! model: an allocation-epoch registry that stamps a key at `malloc`,
//! revokes the lock at `free`, and answers liveness queries for the
//! VM's implicit checks. It knows nothing about the simulated machine;
//! `ifp-alloc` and `ifp-vm` drive it.
//!
//! Three enforcement policies are pluggable via [`TemporalPolicy`]:
//!
//! * **Key-check** ([`TemporalPolicy::KeyCheck`]) — the full
//!   lock-and-key discipline: an access whose stamped key does not match
//!   the live allocation currently covering the address is a
//!   use-after-free, and any access into a revoked (freed, not yet
//!   reused) region traps. Double frees are caught by the revoked-region
//!   registry. This mirrors Zhou et al.'s fat-pointer lock-and-key
//!   checking.
//! * **Tag cycling** ([`TemporalPolicy::TagCycle`]) — an MTE/xTag-style
//!   scheme: each allocation generation of a region carries a small
//!   cycling tag derived from the key ([`tag_of`]); a stale pointer is
//!   caught iff its generation tag differs from the current one, so
//!   detection lapses every [`TAG_PERIOD`] generations (the *reuse
//!   window*). Consecutive generations always differ.
//! * **Quarantine** ([`TemporalPolicy::Quarantine`]) — size-classed
//!   deferred reuse: freed regions are parked per size class until the
//!   class exceeds its byte budget, and while parked the memory cannot
//!   be reallocated, so *any* access to it is a deterministic
//!   use-after-free hit. Detection is purely address-based (no key
//!   needed) but lapses once a region drains and is reused — the
//!   classic ASan-quarantine miss.
//!
//! All policies share the registry: `Off` disables every hook, so the
//! spatial-only configurations are bit-identical to the pre-temporal
//! simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

pub mod reclaim;

pub use ifp_trace::TemporalKind;

/// Generations per tag cycle under [`TemporalPolicy::TagCycle`]: a
/// 4-bit tag with value 0 reserved for "untagged" leaves 15 usable
/// generations before the cycle wraps and a stale pointer aliases the
/// current generation again.
pub const TAG_PERIOD: u64 = 15;

/// Default per-size-class quarantine byte budget.
pub const DEFAULT_QUARANTINE_BUDGET: u64 = 64 * 1024;

/// The temporal generation tag for allocation key `key` (1-based).
/// Cycles through `1..=15`; 0 is reserved for "untagged".
#[must_use]
pub fn tag_of(key: u64) -> u8 {
    debug_assert!(key >= 1, "keys are 1-based");
    ((key - 1) % TAG_PERIOD + 1) as u8
}

/// Which temporal enforcement policy is active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TemporalPolicy {
    /// No temporal modeling (the paper's spatial-only configuration).
    #[default]
    Off,
    /// Deterministic lock-and-key checking.
    KeyCheck,
    /// MTE-style cycling generation tags with a [`TAG_PERIOD`]-wide
    /// reuse window.
    TagCycle,
    /// Size-classed quarantine with deferred reuse.
    Quarantine,
}

impl TemporalPolicy {
    /// Every policy, in evaluation order.
    pub const ALL: [TemporalPolicy; 4] = [
        TemporalPolicy::Off,
        TemporalPolicy::KeyCheck,
        TemporalPolicy::TagCycle,
        TemporalPolicy::Quarantine,
    ];

    /// The enforcing policies (everything but `Off`).
    pub const ENFORCING: [TemporalPolicy; 3] = [
        TemporalPolicy::KeyCheck,
        TemporalPolicy::TagCycle,
        TemporalPolicy::Quarantine,
    ];

    /// Stable lower-case name (CLI vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TemporalPolicy::Off => "off",
            TemporalPolicy::KeyCheck => "key-check",
            TemporalPolicy::TagCycle => "tag-cycle",
            TemporalPolicy::Quarantine => "quarantine",
        }
    }

    /// Inverse of [`TemporalPolicy::name`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        TemporalPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Whether any temporal hook runs under this policy.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != TemporalPolicy::Off
    }
}

impl fmt::Display for TemporalPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters the VM folds into its `RunStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Allocations that received a key.
    pub stamped: u64,
    /// Frees whose lock was revoked.
    pub revoked: u64,
    /// Frees that entered quarantine.
    pub quarantined: u64,
    /// Quarantined regions drained back to the allocator.
    pub drained: u64,
    /// Liveness checks performed.
    pub checks: u64,
    /// Violations detected (use-after-free + double free).
    pub violations: u64,
}

/// A detected temporal violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemporalViolation {
    /// Classification.
    pub kind: TemporalKind,
    /// The faulting address (the free target for double frees).
    pub addr: u64,
    /// Base of the freed allocation involved.
    pub freed_base: u64,
    /// Size of the freed allocation involved.
    pub freed_size: u64,
    /// Allocations performed between the free and the violation.
    pub reuse_distance: u64,
}

/// What a `free` meant, temporally. Drives the allocator integration:
/// `Quarantined` defers the underlying release and lists what must be
/// released *instead* (drained earlier arrivals of the size class).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FreeOutcome {
    /// The address is not a tracked live allocation (policy off, or a
    /// pointer the registry never saw) — fall through to the allocator's
    /// own handling.
    NotTracked,
    /// The address was already freed: a double free.
    DoubleFree(TemporalViolation),
    /// The lock was revoked; the underlying release proceeds now.
    Revoked {
        /// The revoked allocation's key.
        key: u64,
        /// The allocation's size.
        size: u64,
    },
    /// The region entered quarantine; the underlying release is
    /// deferred. The listed `(base, size)` regions drained out of
    /// quarantine and must be released now in their place.
    Quarantined {
        /// The revoked allocation's key.
        key: u64,
        /// The allocation's size.
        size: u64,
        /// Bytes held in quarantine after this transition.
        pending_bytes: u64,
        /// Regions that drained and must be released by the caller.
        drained: Vec<(u64, u64)>,
    },
}

#[derive(Clone, Copy, Debug)]
struct LiveRegion {
    size: u64,
    key: u64,
}

#[derive(Clone, Copy, Debug)]
struct RevokedRegion {
    size: u64,
    /// Allocation count at the moment of the free (reuse distance =
    /// current count − this).
    freed_at: u64,
    quarantined: bool,
}

#[derive(Clone, Copy, Debug)]
struct FreedKey {
    base: u64,
    size: u64,
    freed_at: u64,
}

/// The allocation-epoch registry: every tracked allocation's lifetime
/// identity, the revoked-region map, and the quarantine.
///
/// # Examples
///
/// ```
/// use ifp_temporal::{FreeOutcome, TemporalPolicy, TemporalState};
///
/// let mut t = TemporalState::new(TemporalPolicy::KeyCheck);
/// let key = t.on_alloc(0x1000, 64);
/// assert_eq!(t.check(0x1010, Some(key)), None); // live, key matches
/// assert!(matches!(t.on_free(0x1000), FreeOutcome::Revoked { .. }));
/// // The region is revoked: any access into it is a use-after-free.
/// assert!(t.check(0x1010, Some(key)).is_some());
/// // Freeing it again is a double free.
/// assert!(matches!(t.on_free(0x1000), FreeOutcome::DoubleFree(_)));
/// ```
#[derive(Clone, Debug)]
pub struct TemporalState {
    policy: TemporalPolicy,
    quarantine_budget: u64,
    live: BTreeMap<u64, LiveRegion>,
    revoked: BTreeMap<u64, RevokedRegion>,
    /// Every key ever revoked, for stale-stamp attribution after the
    /// memory has been reused (the revoked-region record is gone then).
    freed_keys: BTreeMap<u64, FreedKey>,
    /// Per-size-class quarantine FIFOs (class = padded power of two).
    fifos: BTreeMap<u64, VecDeque<u64>>,
    class_bytes: BTreeMap<u64, u64>,
    pending_bytes: u64,
    /// Total allocations ever stamped (reuse-distance clock).
    allocs: u64,
    next_key: u64,
    /// Counters for `RunStats`.
    pub stats: TemporalStats,
}

fn size_class(size: u64) -> u64 {
    size.max(16).next_power_of_two()
}

fn containing<T: Copy>(
    map: &BTreeMap<u64, T>,
    addr: u64,
    size: impl Fn(&T) -> u64,
) -> Option<(u64, T)> {
    let (&base, r) = map.range(..=addr).next_back()?;
    (addr < base + size(r)).then_some((base, *r))
}

impl TemporalState {
    /// A registry enforcing `policy` with the default quarantine budget.
    #[must_use]
    pub fn new(policy: TemporalPolicy) -> Self {
        TemporalState::with_quarantine_budget(policy, DEFAULT_QUARANTINE_BUDGET)
    }

    /// A registry with an explicit per-size-class quarantine byte
    /// budget (only meaningful under [`TemporalPolicy::Quarantine`]).
    #[must_use]
    pub fn with_quarantine_budget(policy: TemporalPolicy, budget: u64) -> Self {
        TemporalState {
            policy,
            quarantine_budget: budget,
            live: BTreeMap::new(),
            revoked: BTreeMap::new(),
            freed_keys: BTreeMap::new(),
            fifos: BTreeMap::new(),
            class_bytes: BTreeMap::new(),
            pending_bytes: 0,
            allocs: 0,
            next_key: 1,
            stats: TemporalStats::default(),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> TemporalPolicy {
        self.policy
    }

    /// Whether any hook runs (false under [`TemporalPolicy::Off`]).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }

    /// Bytes currently held in quarantine.
    #[must_use]
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Registers an allocation and returns its key (the stamp the VM
    /// carries alongside the pointer's bounds). Returns 0 when the
    /// policy is off.
    pub fn on_alloc(&mut self, base: u64, size: u64) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.allocs += 1;
        let key = self.next_key;
        self.next_key += 1;
        // The allocator reused this range, so any revoked (drained)
        // record covering it is dead history now. Quarantined records
        // can never overlap: the allocator still holds that memory.
        let end = base + size.max(1);
        let mut stale = Vec::new();
        for (&b, r) in self.revoked.range(..end).rev() {
            // Revoked records are pairwise disjoint, so the walk down
            // from `end` can stop at the first record entirely below
            // `base`.
            if b + r.size.max(1) <= base {
                break;
            }
            if !r.quarantined {
                stale.push(b);
            }
        }
        for b in stale {
            self.revoked.remove(&b);
        }
        self.live.insert(base, LiveRegion { size, key });
        self.stats.stamped += 1;
        key
    }

    /// Processes a free. See [`FreeOutcome`] for how the caller must
    /// react (in particular: defer the underlying release for
    /// `Quarantined` and release the drained regions instead).
    pub fn on_free(&mut self, base: u64) -> FreeOutcome {
        if !self.enabled() {
            return FreeOutcome::NotTracked;
        }
        if let Some(r) = self.live.remove(&base) {
            self.freed_keys.insert(
                r.key,
                FreedKey {
                    base,
                    size: r.size,
                    freed_at: self.allocs,
                },
            );
            let quarantined = self.policy == TemporalPolicy::Quarantine;
            self.revoked.insert(
                base,
                RevokedRegion {
                    size: r.size,
                    freed_at: self.allocs,
                    quarantined,
                },
            );
            self.stats.revoked += 1;
            if !quarantined {
                return FreeOutcome::Revoked {
                    key: r.key,
                    size: r.size,
                };
            }
            self.stats.quarantined += 1;
            let class = size_class(r.size);
            self.fifos.entry(class).or_default().push_back(base);
            *self.class_bytes.entry(class).or_insert(0) += r.size;
            self.pending_bytes += r.size;
            let mut drained = Vec::new();
            while self.class_bytes[&class] > self.quarantine_budget {
                let Some(victim) = self.fifos.get_mut(&class).and_then(VecDeque::pop_front) else {
                    break;
                };
                let vr = self
                    .revoked
                    .get_mut(&victim)
                    .expect("quarantined region has a revoked record");
                vr.quarantined = false;
                *self.class_bytes.get_mut(&class).expect("class exists") -= vr.size;
                self.pending_bytes -= vr.size;
                self.stats.drained += 1;
                drained.push((victim, vr.size));
            }
            return FreeOutcome::Quarantined {
                key: r.key,
                size: r.size,
                pending_bytes: self.pending_bytes,
                drained,
            };
        }
        if let Some((rbase, r)) = containing(&self.revoked, base, |r| r.size) {
            self.stats.violations += 1;
            return FreeOutcome::DoubleFree(TemporalViolation {
                kind: TemporalKind::DoubleFree,
                addr: base,
                freed_base: rbase,
                freed_size: r.size,
                reuse_distance: self.allocs - r.freed_at,
            });
        }
        FreeOutcome::NotTracked
    }

    /// The liveness check the VM runs alongside every bounds check:
    /// `addr` is the access start, `stamp` the key riding with the
    /// pointer register (`None` for unkeyed pointers — ones that round-
    /// tripped through memory, or pre-temporal flows). Returns the
    /// violation to trap on, if any.
    pub fn check(&mut self, addr: u64, stamp: Option<u64>) -> Option<TemporalViolation> {
        if !self.enabled() {
            return None;
        }
        self.stats.checks += 1;
        if let Some((_, r)) = containing(&self.live, addr, |r| r.size) {
            // Live region. An unkeyed pointer is never challenged (no
            // false positives on legacy flows); a matching key passes.
            let key = stamp?;
            if key == r.key {
                return None;
            }
            // Stale key into reused memory.
            let caught = match self.policy {
                TemporalPolicy::KeyCheck => true,
                TemporalPolicy::TagCycle => tag_of(key) != tag_of(r.key),
                // Quarantine is address-based: once the region was
                // reused the evidence is gone.
                TemporalPolicy::Quarantine => false,
                TemporalPolicy::Off => unreachable!("checked above"),
            };
            if !caught {
                return None;
            }
            self.stats.violations += 1;
            let freed = self.freed_keys.get(&key);
            return Some(TemporalViolation {
                kind: TemporalKind::UseAfterFree,
                addr,
                freed_base: freed.map_or(0, |f| f.base),
                freed_size: freed.map_or(0, |f| f.size),
                reuse_distance: freed.map_or(0, |f| self.allocs - f.freed_at),
            });
        }
        if let Some((rbase, r)) = containing(&self.revoked, addr, |r| r.size) {
            // Freed and not reused (or quarantined): deterministic hit
            // under every enforcing policy, keyed or not.
            self.stats.violations += 1;
            return Some(TemporalViolation {
                kind: TemporalKind::UseAfterFree,
                addr,
                freed_base: rbase,
                freed_size: r.size,
                reuse_distance: self.allocs - r.freed_at,
            });
        }
        None
    }

    /// The key of the live allocation covering `addr`, if any — how
    /// `promote` re-stamps a pointer loaded from memory.
    #[must_use]
    pub fn stamp_at(&self, addr: u64) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        containing(&self.live, addr, |r| r.size).map(|(_, r)| r.key)
    }

    /// Whether `addr` falls in a revoked (freed, not-yet-reused) region.
    #[must_use]
    pub fn is_revoked(&self, addr: u64) -> bool {
        containing(&self.revoked, addr, |r| r.size).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_check_catches_stale_key_into_reused_memory() {
        let mut t = TemporalState::new(TemporalPolicy::KeyCheck);
        let k1 = t.on_alloc(0x1000, 64);
        assert!(matches!(t.on_free(0x1000), FreeOutcome::Revoked { .. }));
        let k2 = t.on_alloc(0x1000, 64); // allocator reused the chunk
        assert_ne!(k1, k2);
        // New key passes, stale key is a UAF with the freed allocation
        // attributed.
        assert_eq!(t.check(0x1010, Some(k2)), None);
        let v = t.check(0x1010, Some(k1)).expect("stale key caught");
        assert_eq!(v.kind, TemporalKind::UseAfterFree);
        assert_eq!((v.freed_base, v.freed_size), (0x1000, 64));
        assert_eq!(v.reuse_distance, 1);
    }

    #[test]
    fn revoked_region_traps_even_unkeyed() {
        for policy in TemporalPolicy::ENFORCING {
            let mut t = TemporalState::new(policy);
            t.on_alloc(0x2000, 32);
            t.on_free(0x2000);
            let v = t.check(0x2008, None).expect("revoked region access");
            assert_eq!(v.kind, TemporalKind::UseAfterFree);
            assert_eq!(v.freed_base, 0x2000);
        }
    }

    #[test]
    fn double_free_is_deterministic() {
        for policy in TemporalPolicy::ENFORCING {
            let mut t = TemporalState::new(policy);
            t.on_alloc(0x3000, 128);
            let first = t.on_free(0x3000);
            assert!(!matches!(first, FreeOutcome::DoubleFree(_)));
            match t.on_free(0x3000) {
                FreeOutcome::DoubleFree(v) => {
                    assert_eq!(v.kind, TemporalKind::DoubleFree);
                    assert_eq!(v.freed_base, 0x3000);
                }
                other => panic!("{policy}: expected double free, got {other:?}"),
            }
        }
    }

    #[test]
    fn tag_cycle_wraps_after_period_generations() {
        // Keys 1 and 1+TAG_PERIOD share a tag: a stale pointer that old
        // escapes TagCycle but not KeyCheck.
        assert_eq!(tag_of(1), tag_of(1 + TAG_PERIOD));
        assert_ne!(tag_of(1), tag_of(2));
        let mut t = TemporalState::new(TemporalPolicy::TagCycle);
        let k1 = t.on_alloc(0x1000, 64);
        t.on_free(0x1000);
        // TAG_PERIOD - 1 intervening allocations elsewhere, then reuse.
        for i in 0..TAG_PERIOD - 1 {
            t.on_alloc(0x10_0000 + i * 0x100, 64);
        }
        let k2 = t.on_alloc(0x1000, 64);
        assert_eq!(tag_of(k1), tag_of(k2), "cycle wrapped");
        assert_eq!(t.check(0x1010, Some(k1)), None, "aliased tag escapes");
        // One generation earlier it would have been caught.
        let mut t2 = TemporalState::new(TemporalPolicy::TagCycle);
        let k1 = t2.on_alloc(0x1000, 64);
        t2.on_free(0x1000);
        let _k2 = t2.on_alloc(0x1000, 64);
        assert!(t2.check(0x1010, Some(k1)).is_some(), "fresh tag caught");
    }

    #[test]
    fn quarantine_defers_then_drains_per_size_class() {
        let mut t = TemporalState::with_quarantine_budget(TemporalPolicy::Quarantine, 128);
        t.on_alloc(0x1000, 64);
        t.on_alloc(0x2000, 64);
        t.on_alloc(0x3000, 64);
        match t.on_free(0x1000) {
            FreeOutcome::Quarantined {
                pending_bytes,
                drained,
                ..
            } => {
                assert_eq!(pending_bytes, 64);
                assert!(drained.is_empty());
            }
            other => panic!("{other:?}"),
        }
        match t.on_free(0x2000) {
            FreeOutcome::Quarantined { drained, .. } => assert!(drained.is_empty()),
            other => panic!("{other:?}"),
        }
        // Third free of the class exceeds the 128-byte budget: the
        // oldest (0x1000) drains.
        match t.on_free(0x3000) {
            FreeOutcome::Quarantined {
                pending_bytes,
                drained,
                ..
            } => {
                assert_eq!(drained, vec![(0x1000, 64)]);
                assert_eq!(pending_bytes, 128);
            }
            other => panic!("{other:?}"),
        }
        // All three remain revoked — access still trapped.
        assert!(t.is_revoked(0x1000) && t.is_revoked(0x2000) && t.is_revoked(0x3000));
        assert_eq!(t.stats.drained, 1);
    }

    #[test]
    fn benign_realloc_is_clean_under_every_policy() {
        for policy in TemporalPolicy::ENFORCING {
            let mut t = TemporalState::new(policy);
            let k1 = t.on_alloc(0x1000, 64);
            assert_eq!(t.check(0x1000, Some(k1)), None);
            t.on_free(0x1000);
            // Under quarantine the allocator hands out fresh memory; the
            // others reuse. Either way the *new* key is clean.
            let base = if policy == TemporalPolicy::Quarantine {
                0x5000
            } else {
                0x1000
            };
            let k2 = t.on_alloc(base, 64);
            assert_eq!(t.check(base + 8, Some(k2)), None, "{policy}");
            assert!(
                !matches!(t.on_free(base), FreeOutcome::DoubleFree(_)),
                "{policy}"
            );
            assert_eq!(t.stats.violations, 0, "{policy}");
        }
    }

    #[test]
    fn off_policy_is_inert() {
        let mut t = TemporalState::new(TemporalPolicy::Off);
        assert_eq!(t.on_alloc(0x1000, 64), 0);
        assert_eq!(t.on_free(0x1000), FreeOutcome::NotTracked);
        assert_eq!(t.check(0x1000, Some(1)), None);
        assert_eq!(t.stamp_at(0x1000), None);
        assert_eq!(t.stats, TemporalStats::default());
    }

    #[test]
    fn reuse_distance_counts_allocations_since_free() {
        let mut t = TemporalState::new(TemporalPolicy::KeyCheck);
        t.on_alloc(0x1000, 64);
        t.on_free(0x1000);
        for i in 0..5 {
            t.on_alloc(0x2000 + i * 0x100, 16);
        }
        let v = t.check(0x1000, None).unwrap();
        assert_eq!(v.reuse_distance, 5);
    }

    #[test]
    fn reuse_trims_only_drained_records() {
        let mut t = TemporalState::with_quarantine_budget(TemporalPolicy::Quarantine, 64);
        t.on_alloc(0x1000, 64);
        t.on_free(0x1000); // quarantined (fills the budget exactly)
        t.on_alloc(0x2000, 64);
        t.on_free(0x2000); // over budget: 0x1000 drains
        assert!(t.is_revoked(0x1000));
        // The allocator reuses the drained range: its record goes away,
        // the still-quarantined one stays.
        t.on_alloc(0x1000, 64);
        assert!(!t.is_revoked(0x1000));
        assert!(t.is_revoked(0x2000));
    }
}
