//! Concurrent reclamation trackers for the shared-heap execution mode.
//!
//! The single-mutator policies in this crate's root ([`TemporalPolicy`])
//! assume one thread owns the allocation order. Under `ifp-concurrent`'s
//! shared heap, a freed block may still be reachable from another
//! thread's IFPR file, so freeing splits into two phases — **retire**
//! (the logical free: the block leaves the live set and its lock is
//! revoked) and **reclaim** (the physical free: the block's memory
//! returns to the allocator's free lists and may be reused). The three
//! trackers here decide *when* retire may become reclaim, mirroring the
//! memento tracker family:
//!
//! * **Epoch** ([`ReclaimPolicy::Epoch`]) — RCU-style: each thread pins
//!   the global era on entering a critical section; a retired block is
//!   reclaimable once every pinned era is newer than its retire era.
//! * **Hazard** ([`ReclaimPolicy::Hazard`]) — hazard pointers: threads
//!   publish the base of each block they are about to dereference; a
//!   retired block is reclaimable once no thread's hazard set names it.
//! * **Interval** ([`ReclaimPolicy::Interval`]) — IBR: each thread
//!   holds an era *interval* `[lo, hi]` (entry era, extended on each
//!   protect); a retired block with lifetime `[birth, retire]` is
//!   reclaimable once no interval overlaps that lifetime.
//!
//! Detection is **never weakened by reclamation**: a retired record
//! persists (flagged reclaimed) until the allocator actually reuses the
//! address range, so any unprotected access between free and reuse is a
//! deterministic use-after-free hit, and an access after reuse is caught
//! by the full-width era/key comparison (64-bit keys never wrap — unlike
//! the 4-bit [`tag_of`](crate::tag_of) cycle, there is no reuse window).
//! The trackers differ only in reclamation *timing*, i.e. footprint and
//! forensics; and because the temporal check runs after the spatial
//! bounds check in the engine, reclamation can never mask a spatial
//! violation either.

use std::collections::BTreeMap;
use std::fmt;

use crate::TemporalKind;

/// Which concurrent reclamation tracker is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReclaimPolicy {
    /// RCU-style epoch pinning per critical section.
    Epoch,
    /// Per-block hazard-pointer publication.
    Hazard,
    /// Era-interval reservations (IBR).
    Interval,
}

impl ReclaimPolicy {
    /// All trackers, in presentation order.
    pub const ALL: [ReclaimPolicy; 3] = [
        ReclaimPolicy::Epoch,
        ReclaimPolicy::Hazard,
        ReclaimPolicy::Interval,
    ];

    /// Stable lower-case CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReclaimPolicy::Epoch => "epoch",
            ReclaimPolicy::Hazard => "hazard",
            ReclaimPolicy::Interval => "interval",
        }
    }

    /// Parses a [`name`](Self::name).
    #[must_use]
    pub fn from_name(s: &str) -> Option<ReclaimPolicy> {
        ReclaimPolicy::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl fmt::Display for ReclaimPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The temporal stamp a capability carries under a tracker: the
/// allocation key plus the birth era. Full-width, so stale stamps are
/// always distinguishable from the current generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamp {
    /// 1-based allocation-order key (the lock-and-key key).
    pub key: u64,
    /// Global era at allocation.
    pub birth_era: u64,
}

/// A detected violation, with the cross-thread forensics the trap
/// carries: who freed the block, when it was (or wasn't) reclaimed, and
/// how many allocations elapsed since the free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcurrentViolation {
    /// Use-after-free or double-free.
    pub kind: TemporalKind,
    /// The faulting address (for double frees, the freed base).
    pub addr: u64,
    /// Logical thread performing the faulting access/free.
    pub accessing_thread: usize,
    /// Logical thread that originally freed the block.
    pub freeing_thread: usize,
    /// Base of the freed allocation.
    pub freed_base: u64,
    /// Size of the freed allocation.
    pub freed_size: u64,
    /// Global era when the block was retired.
    pub retire_era: u64,
    /// Global era when the tracker reclaimed it (`None` while deferred).
    pub reclaim_era: Option<u64>,
    /// Allocations between the free and the faulting access.
    pub reuse_distance: u64,
}

impl fmt::Display for ConcurrentViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {:#x} by thread {} (freed by thread {} at era {}, {}, \
             base {:#x} size {}, reuse distance {})",
            self.kind.name(),
            self.addr,
            self.accessing_thread,
            self.freeing_thread,
            self.retire_era,
            match self.reclaim_era {
                Some(e) => format!("reclaimed at era {e}"),
                None => "still deferred".to_string(),
            },
            self.freed_base,
            self.freed_size,
            self.reuse_distance
        )
    }
}

/// What [`ReclaimTracker::retire`] decided.
#[derive(Debug)]
pub enum RetireOutcome {
    /// The base was never allocated here; the caller's allocator decides
    /// how to trap.
    NotTracked,
    /// The block was already freed.
    DoubleFree(Box<ConcurrentViolation>),
    /// The block left the live set. `reclaimed` lists every block (base,
    /// size) whose memory the scan released to the allocator — possibly
    /// including this one, possibly earlier retirees, possibly empty.
    Retired {
        /// The retired block's key.
        key: u64,
        /// Blocks now safe to reuse.
        reclaimed: Vec<(u64, u64)>,
    },
}

#[derive(Clone, Debug)]
struct LiveRec {
    size: u64,
    key: u64,
    birth_era: u64,
}

#[derive(Clone, Debug)]
struct RetiredRec {
    size: u64,
    key: u64,
    birth_era: u64,
    retire_era: u64,
    freeing_thread: usize,
    retired_at_allocs: u64,
    /// Era at which the scan released the memory; `None` while deferred.
    reclaim_era: Option<u64>,
}

/// Attribution kept per freed key so stale-key hits after reuse still
/// name the original free.
#[derive(Clone, Debug)]
struct FreedKey {
    base: u64,
    size: u64,
    retire_era: u64,
    reclaim_era: Option<u64>,
    freeing_thread: usize,
    retired_at_allocs: u64,
}

/// Per-thread reservation state. Only the field matching the active
/// policy is used.
#[derive(Clone, Debug, Default)]
struct Reservation {
    /// Epoch: era pinned at critical-section entry.
    epoch: Option<u64>,
    /// Hazard: bases currently published.
    hazards: Vec<u64>,
    /// Interval: `[lo, hi]` era reservation.
    interval: Option<(u64, u64)>,
}

/// Aggregate tracker statistics, for reports and the `tables --
/// concurrent` summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Blocks retired (logical frees).
    pub retires: u64,
    /// Blocks whose memory was released to the allocator.
    pub reclaims: u64,
    /// Reclamation scans run.
    pub scans: u64,
    /// Bytes currently retired but not yet reclaimed.
    pub deferred_bytes: u64,
    /// High-water mark of `deferred_bytes`.
    pub peak_deferred_bytes: u64,
}

/// The shared-heap temporal registry: live set, deferred set, per-thread
/// reservations, and the global era clock. Deterministic: every map is
/// ordered and every decision is a pure function of the call sequence.
#[derive(Debug)]
pub struct ReclaimTracker {
    policy: ReclaimPolicy,
    era: u64,
    next_key: u64,
    allocs: u64,
    threads: Vec<Reservation>,
    live: BTreeMap<u64, LiveRec>,
    retired: BTreeMap<u64, RetiredRec>,
    freed_keys: BTreeMap<u64, FreedKey>,
    stats: ReclaimStats,
}

impl ReclaimTracker {
    /// A tracker for `threads` logical threads.
    #[must_use]
    pub fn new(policy: ReclaimPolicy, threads: usize) -> Self {
        ReclaimTracker {
            policy,
            era: 1,
            next_key: 1,
            allocs: 0,
            threads: vec![Reservation::default(); threads],
            live: BTreeMap::new(),
            retired: BTreeMap::new(),
            freed_keys: BTreeMap::new(),
            stats: ReclaimStats::default(),
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> ReclaimPolicy {
        self.policy
    }

    /// The global era clock (advances on alloc and retire).
    #[must_use]
    pub fn era(&self) -> u64 {
        self.era
    }

    /// Tracker statistics so far.
    #[must_use]
    pub fn stats(&self) -> ReclaimStats {
        self.stats
    }

    /// Thread `t` enters a critical section: pin the era (epoch), open
    /// the interval (interval), or arm the hazard set (hazard).
    pub fn enter(&mut self, t: usize) {
        let era = self.era;
        let r = &mut self.threads[t];
        match self.policy {
            ReclaimPolicy::Epoch => r.epoch = Some(era),
            ReclaimPolicy::Interval => r.interval = Some((era, era)),
            ReclaimPolicy::Hazard => r.hazards.clear(),
        }
    }

    /// Thread `t` leaves its critical section, dropping every
    /// reservation it held.
    pub fn exit(&mut self, t: usize) {
        let r = &mut self.threads[t];
        r.epoch = None;
        r.hazards.clear();
        r.interval = None;
    }

    /// Thread `t` announces it is about to dereference `addr`. Under
    /// hazard this publishes the containing block's base; under interval
    /// it extends the reservation to the current era; under epoch it is
    /// a no-op (the pinned era already covers everything reachable).
    pub fn protect(&mut self, t: usize, addr: u64) {
        match self.policy {
            ReclaimPolicy::Epoch => {}
            ReclaimPolicy::Interval => {
                let era = self.era;
                if let Some((_, hi)) = &mut self.threads[t].interval {
                    *hi = (*hi).max(era);
                }
            }
            ReclaimPolicy::Hazard => {
                let base = self
                    .containing_live(addr)
                    .map(|(b, _)| b)
                    .or_else(|| self.containing_retired(addr).map(|(b, _)| b))
                    .unwrap_or(addr);
                let h = &mut self.threads[t].hazards;
                if !h.contains(&base) {
                    h.push(base);
                }
            }
        }
    }

    /// Records an allocation by thread `t` and returns its stamp. The
    /// address range must come from the allocator's free lists, i.e. any
    /// overlapping retired record must already be reclaimed — reuse is
    /// what finally forgets a freed block.
    pub fn on_alloc(&mut self, t: usize, base: u64, size: u64) -> Stamp {
        let _ = t;
        self.era += 1;
        self.allocs += 1;
        let key = self.next_key;
        self.next_key += 1;
        // Reuse trims the overlapped reclaimed records.
        let overlapping: Vec<u64> = self
            .retired
            .range(..base + size)
            .rev()
            .take_while(|(b, r)| **b + r.size > base)
            .map(|(b, _)| *b)
            .collect();
        for b in overlapping {
            let rec = &self.retired[&b];
            debug_assert!(
                rec.reclaim_era.is_some(),
                "allocator reused a deferred block at {b:#x}"
            );
            self.retired.remove(&b);
        }
        let stamp = Stamp {
            key,
            birth_era: self.era,
        };
        self.live.insert(
            base,
            LiveRec {
                size,
                key,
                birth_era: self.era,
            },
        );
        stamp
    }

    /// Thread `t` frees `base`: retire the block, then scan for
    /// reclaimable deferred blocks.
    pub fn retire(&mut self, t: usize, base: u64) -> RetireOutcome {
        if let Some(rec) = self.live.remove(&base) {
            self.era += 1;
            self.stats.retires += 1;
            self.stats.deferred_bytes += rec.size;
            self.stats.peak_deferred_bytes = self
                .stats
                .peak_deferred_bytes
                .max(self.stats.deferred_bytes);
            let key = rec.key;
            self.freed_keys.insert(
                key,
                FreedKey {
                    base,
                    size: rec.size,
                    retire_era: self.era,
                    reclaim_era: None,
                    freeing_thread: t,
                    retired_at_allocs: self.allocs,
                },
            );
            self.retired.insert(
                base,
                RetiredRec {
                    size: rec.size,
                    key,
                    birth_era: rec.birth_era,
                    retire_era: self.era,
                    freeing_thread: t,
                    retired_at_allocs: self.allocs,
                    reclaim_era: None,
                },
            );
            let reclaimed = self.scan();
            return RetireOutcome::Retired { key, reclaimed };
        }
        if let Some((fbase, rec)) = self.containing_retired(base) {
            let rec = rec.clone();
            return RetireOutcome::DoubleFree(Box::new(ConcurrentViolation {
                kind: TemporalKind::DoubleFree,
                addr: base,
                accessing_thread: t,
                freeing_thread: rec.freeing_thread,
                freed_base: fbase,
                freed_size: rec.size,
                retire_era: rec.retire_era,
                reclaim_era: rec.reclaim_era,
                reuse_distance: self.allocs - rec.retired_at_allocs,
            }));
        }
        RetireOutcome::NotTracked
    }

    /// Scans the deferred set and releases every block no reservation
    /// still covers. Returns the released `(base, size)` pairs; the
    /// caller pushes them back onto its free lists. Also run from
    /// [`retire`](Self::retire).
    pub fn scan(&mut self) -> Vec<(u64, u64)> {
        self.stats.scans += 1;
        let era = self.era;
        let mut released = Vec::new();
        for (&base, rec) in &mut self.retired {
            if rec.reclaim_era.is_some() {
                continue;
            }
            let blocked = self.threads.iter().any(|r| match self.policy {
                ReclaimPolicy::Epoch => r.epoch.is_some_and(|e| e <= rec.retire_era),
                ReclaimPolicy::Hazard => r.hazards.contains(&base),
                ReclaimPolicy::Interval => r
                    .interval
                    .is_some_and(|(lo, hi)| lo <= rec.retire_era && hi >= rec.birth_era),
            });
            if !blocked {
                rec.reclaim_era = Some(era);
                self.stats.reclaims += 1;
                self.stats.deferred_bytes -= rec.size;
                released.push((base, rec.size));
                if let Some(fk) = self.freed_keys.get_mut(&rec.key) {
                    fk.reclaim_era = Some(era);
                }
            }
        }
        released
    }

    /// Checks thread `t`'s access to `addr` carrying `stamp` (None for
    /// an unkeyed access, e.g. a pointer laundered through memory).
    /// Returns the violation if the access is temporally unsafe.
    pub fn check(&self, t: usize, addr: u64, stamp: Option<Stamp>) -> Option<ConcurrentViolation> {
        if let Some((_, rec)) = self.containing_live(addr) {
            // Live region: safe unless the capability's key is stale —
            // the address was freed and reused underneath it.
            let stale = stamp.is_some_and(|s| s.key != rec.key);
            if !stale {
                return None;
            }
            let s = stamp.expect("stale implies stamped");
            let fk = self.freed_keys.get(&s.key);
            return Some(ConcurrentViolation {
                kind: TemporalKind::UseAfterFree,
                addr,
                accessing_thread: t,
                freeing_thread: fk.map_or(usize::MAX, |f| f.freeing_thread),
                freed_base: fk.map_or(0, |f| f.base),
                freed_size: fk.map_or(0, |f| f.size),
                retire_era: fk.map_or(0, |f| f.retire_era),
                reclaim_era: fk.and_then(|f| f.reclaim_era),
                reuse_distance: fk.map_or(0, |f| self.allocs - f.retired_at_allocs),
            });
        }
        if let Some((base, rec)) = self.containing_retired(addr) {
            // Retired region: safe only for a reservation that was in
            // force before the retire *and* while the memory is still
            // deferred — exactly the window the trackers guarantee.
            let covered = match self.policy {
                ReclaimPolicy::Epoch => self.threads[t].epoch.is_some_and(|e| e <= rec.retire_era),
                ReclaimPolicy::Hazard => self.threads[t].hazards.contains(&base),
                ReclaimPolicy::Interval => self.threads[t]
                    .interval
                    .is_some_and(|(lo, hi)| lo <= rec.retire_era && hi >= rec.birth_era),
            };
            if covered && rec.reclaim_era.is_none() {
                return None;
            }
            return Some(ConcurrentViolation {
                kind: TemporalKind::UseAfterFree,
                addr,
                accessing_thread: t,
                freeing_thread: rec.freeing_thread,
                freed_base: base,
                freed_size: rec.size,
                retire_era: rec.retire_era,
                reclaim_era: rec.reclaim_era,
                reuse_distance: self.allocs - rec.retired_at_allocs,
            });
        }
        None
    }

    /// The live record's `(base, size, stamp)` covering `addr`, if any —
    /// how the engine promotes a pointer loaded from shared memory back
    /// into a stamped capability.
    #[must_use]
    pub fn resolve_live(&self, addr: u64) -> Option<(u64, u64, Stamp)> {
        self.containing_live(addr).map(|(b, r)| {
            (
                b,
                r.size,
                Stamp {
                    key: r.key,
                    birth_era: r.birth_era,
                },
            )
        })
    }

    /// Bytes currently retired but not reclaimed.
    #[must_use]
    pub fn deferred_bytes(&self) -> u64 {
        self.stats.deferred_bytes
    }

    fn containing_live(&self, addr: u64) -> Option<(u64, &LiveRec)> {
        let (&base, rec) = self.live.range(..=addr).next_back()?;
        (addr < base + rec.size).then_some((base, rec))
    }

    fn containing_retired(&self, addr: u64) -> Option<(u64, &RetiredRec)> {
        let (&base, rec) = self.retired.range(..=addr).next_back()?;
        (addr < base + rec.size).then_some((base, rec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retired_of(o: RetireOutcome) -> Vec<(u64, u64)> {
        match o {
            RetireOutcome::Retired { reclaimed, .. } => reclaimed,
            other => panic!("expected Retired, got {other:?}"),
        }
    }

    #[test]
    fn epoch_pins_block_reclamation() {
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Epoch, 2);
        tr.on_alloc(0, 0x1000, 64);
        tr.enter(1); // reader pins the pre-retire era
        let reclaimed = retired_of(tr.retire(0, 0x1000));
        assert!(reclaimed.is_empty(), "pinned reader must defer reclaim");
        assert_eq!(tr.deferred_bytes(), 64);
        // Reader may still touch the block while pinned.
        assert!(tr.check(1, 0x1010, None).is_none());
        tr.exit(1);
        assert_eq!(tr.scan(), vec![(0x1000, 64)]);
        assert_eq!(tr.deferred_bytes(), 0);
        // After exit, the same access is a UAF (reservation gone).
        let v = tr.check(1, 0x1010, None).expect("uaf after exit");
        assert_eq!(v.kind, TemporalKind::UseAfterFree);
        assert_eq!(v.freeing_thread, 0);
        assert_eq!(v.accessing_thread, 1);
        assert!(v.reclaim_era.is_some());
    }

    #[test]
    fn epoch_entered_after_retire_does_not_cover() {
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Epoch, 2);
        tr.on_alloc(0, 0x1000, 64);
        retired_of(tr.retire(0, 0x1000));
        tr.enter(1); // too late: era already past the retire
        let v = tr.check(1, 0x1000, None);
        assert!(v.is_some(), "late epoch must not cover a retired block");
    }

    #[test]
    fn hazard_protects_only_named_blocks() {
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Hazard, 2);
        tr.on_alloc(0, 0x1000, 64);
        tr.on_alloc(0, 0x2000, 64);
        tr.enter(1);
        tr.protect(1, 0x1008); // resolves to base 0x1000
        let r1 = retired_of(tr.retire(0, 0x1000));
        assert!(r1.is_empty(), "hazard must defer the named block");
        // The unnamed block reclaims immediately.
        let r2 = retired_of(tr.retire(0, 0x2000));
        assert_eq!(r2, vec![(0x2000, 64)]);
        // Protected access is safe; the other retired block traps.
        assert!(tr.check(1, 0x1010, None).is_none());
        assert!(tr.check(1, 0x2010, None).is_some());
        tr.exit(1);
        assert_eq!(tr.scan(), vec![(0x1000, 64)]);
    }

    #[test]
    fn interval_blocks_overlapping_lifetimes_only() {
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Interval, 2);
        tr.on_alloc(0, 0x1000, 64); // lifetime starts here
        tr.enter(1); // interval [e, e]
        tr.protect(1, 0x1000); // extend hi to current era
        let r = retired_of(tr.retire(0, 0x1000));
        assert!(r.is_empty(), "overlapping interval must defer");
        assert!(tr.check(1, 0x1000, None).is_none());
        tr.exit(1);
        // A block born after the reader's interval closed is untouched:
        let s2 = tr.on_alloc(0, 0x3000, 32);
        tr.enter(1);
        tr.exit(1);
        let r2 = retired_of(tr.retire(0, 0x3000));
        assert_eq!(r2.len(), 2, "both blocks reclaim once intervals drop");
        assert!(r2.contains(&(0x1000, 64)));
        assert!(r2.contains(&(0x3000, 32)));
        let _ = s2;
    }

    #[test]
    fn double_free_carries_forensics() {
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Epoch, 3);
        tr.on_alloc(0, 0x1000, 128);
        retired_of(tr.retire(1, 0x1000));
        match tr.retire(2, 0x1000) {
            RetireOutcome::DoubleFree(v) => {
                assert_eq!(v.kind, TemporalKind::DoubleFree);
                assert_eq!(v.freeing_thread, 1);
                assert_eq!(v.accessing_thread, 2);
                assert_eq!(v.freed_base, 0x1000);
                assert_eq!(v.freed_size, 128);
            }
            other => panic!("expected DoubleFree, got {other:?}"),
        }
    }

    #[test]
    fn stale_key_after_reuse_is_caught_by_every_policy() {
        for policy in ReclaimPolicy::ALL {
            let mut tr = ReclaimTracker::new(policy, 2);
            let stale = tr.on_alloc(0, 0x1000, 64);
            retired_of(tr.retire(0, 0x1000)); // reclaims immediately (no readers)
            let fresh = tr.on_alloc(1, 0x1000, 64); // same slot reused
            assert_ne!(stale.key, fresh.key);
            // The new owner is fine; the stale capability traps.
            assert!(tr.check(1, 0x1000, Some(fresh)).is_none());
            let v = tr
                .check(0, 0x1000, Some(stale))
                .unwrap_or_else(|| panic!("{policy}: stale key must trap"));
            assert_eq!(v.kind, TemporalKind::UseAfterFree);
            assert_eq!(v.freeing_thread, 0);
            assert!(v.reclaim_era.is_some(), "{policy}: was reclaimed");
            assert_eq!(v.reuse_distance, 1, "{policy}: one alloc since free");
        }
    }

    #[test]
    fn unprotected_access_to_deferred_block_traps() {
        for policy in ReclaimPolicy::ALL {
            let mut tr = ReclaimTracker::new(policy, 2);
            tr.on_alloc(0, 0x1000, 64);
            tr.enter(0);
            tr.protect(0, 0x1000); // the *freeing* thread's reservation
            retired_of(tr.retire(0, 0x1000));
            // Thread 1 never reserved anything: deterministic UAF even
            // though the memory is still deferred (or just reclaimed).
            let v = tr
                .check(1, 0x1020, None)
                .unwrap_or_else(|| panic!("{policy}: unprotected access must trap"));
            assert_eq!(v.kind, TemporalKind::UseAfterFree);
            assert_eq!(v.accessing_thread, 1);
            assert_eq!(v.freeing_thread, 0);
        }
    }

    #[test]
    fn deferred_bytes_bounded_by_discipline() {
        // With no reservations held, every retire reclaims at once, so
        // the deferred set never grows: reclamation bounds footprint.
        let mut tr = ReclaimTracker::new(ReclaimPolicy::Interval, 4);
        for i in 0..1000u64 {
            let base = 0x1_0000 + i * 64;
            tr.on_alloc((i % 4) as usize, base, 64);
            let r = retired_of(tr.retire(((i + 1) % 4) as usize, base));
            assert_eq!(r, vec![(base, 64)]);
        }
        assert_eq!(tr.stats().peak_deferred_bytes, 64);
        assert_eq!(tr.stats().retires, 1000);
        assert_eq!(tr.stats().reclaims, 1000);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in ReclaimPolicy::ALL {
            assert_eq!(ReclaimPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(ReclaimPolicy::from_name("off"), None);
    }
}
