//! Stable-coded diagnostics with JSONL rendering.
//!
//! Every defect the verifier or the interval analysis reports carries a
//! stable code (`IFP-Vnnn` for verifier errors, `IFP-Annn` for analysis
//! lints) plus function/block/op coordinates, and renders to one JSON
//! object per line — the same machine-readable discipline as the
//! `ifp-trace` JSONL log.

use std::fmt;

/// Stable diagnostic codes. Codes are append-only: once published they
/// keep their meaning forever so downstream tooling can filter on them.
pub mod codes {
    /// Program has no `main` function.
    pub const NO_MAIN: &str = "IFP-V001";
    /// Function has no basic blocks.
    pub const NO_BLOCKS: &str = "IFP-V002";
    /// Register reference out of the function's declared range.
    pub const REG_RANGE: &str = "IFP-V003";
    /// Terminator targets a block that does not exist.
    pub const BLOCK_RANGE: &str = "IFP-V004";
    /// A register is read on some path before any definition reaches it.
    pub const USE_BEFORE_DEF: &str = "IFP-V005";
    /// GEP step is inconsistent with the type table (field index out of
    /// range, or a `Field` step on a non-struct type).
    pub const GEP_TYPE: &str = "IFP-V006";
    /// Type handle out of the type-table range.
    pub const TYPE_RANGE: &str = "IFP-V007";
    /// Load/store of a non-scalar (aggregate) type.
    pub const NON_SCALAR_ACCESS: &str = "IFP-V008";
    /// Call to an unknown function.
    pub const UNKNOWN_CALLEE: &str = "IFP-V009";
    /// Call arity does not match the callee's parameter count.
    pub const CALL_ARITY: &str = "IFP-V010";
    /// Extern call arity does not match the runtime signature.
    pub const EXT_ARITY: &str = "IFP-V011";
    /// Alloca of zero objects.
    pub const ALLOCA_ZERO: &str = "IFP-V012";
    /// Global index out of range.
    pub const GLOBAL_RANGE: &str = "IFP-V013";
    /// Analysis lint: access is provably out of bounds of its allocation.
    pub const PROVEN_OOB: &str = "IFP-A001";
    /// Analysis note: an inter-procedural summary application at this
    /// call narrowed previously-unknown accesses to proven.
    pub const SUMMARY_APPLIED: &str = "IFP-A002";
}

/// Where in a function a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagLoc {
    /// The whole function (or program, when the function name is empty).
    Function,
    /// Op `op` of block `block`.
    Op {
        /// Block index.
        block: usize,
        /// Op index within the block.
        op: usize,
    },
    /// The terminator of block `block`.
    Terminator {
        /// Block index.
        block: usize,
    },
}

/// A single verifier or analysis diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (see [`codes`]).
    pub code: &'static str,
    /// Function name; empty for program-level diagnostics.
    pub func: String,
    /// Coordinates inside the function.
    pub loc: DiagLoc,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// One JSON object, no trailing newline. Keys are emitted in a fixed
    /// order so output is byte-stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"code\":\"");
        s.push_str(self.code);
        s.push_str("\",\"func\":\"");
        escape_into(&self.func, &mut s);
        s.push('"');
        match self.loc {
            DiagLoc::Function => {}
            DiagLoc::Op { block, op } => {
                s.push_str(&format!(",\"block\":{block},\"op\":{op}"));
            }
            DiagLoc::Terminator { block } => {
                s.push_str(&format!(",\"block\":{block},\"term\":true"));
            }
        }
        s.push_str(",\"message\":\"");
        escape_into(&self.message, &mut s);
        s.push_str("\"}");
        s
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.code)?;
        if !self.func.is_empty() {
            write!(f, "in `{}`", self.func)?;
            match self.loc {
                DiagLoc::Function => {}
                DiagLoc::Op { block, op } => write!(f, " at bb{block}:{op}")?,
                DiagLoc::Terminator { block } => write!(f, " at bb{block}:term")?,
            }
            f.write_str(": ")?;
        }
        f.write_str(&self.message)
    }
}

/// Renders diagnostics as JSONL: one JSON object per line.
#[must_use]
pub fn to_jsonl(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_json());
        out.push('\n');
    }
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_stable() {
        let d = Diagnostic {
            code: codes::REG_RANGE,
            func: "main".to_string(),
            loc: DiagLoc::Op { block: 1, op: 2 },
            message: "register r9 out of range (4 regs)".to_string(),
        };
        assert_eq!(
            d.to_json(),
            "{\"code\":\"IFP-V003\",\"func\":\"main\",\"block\":1,\"op\":2,\
             \"message\":\"register r9 out of range (4 regs)\"}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic {
            code: codes::NO_MAIN,
            func: "we\"ird\\name".to_string(),
            loc: DiagLoc::Function,
            message: "line\nbreak".to_string(),
        };
        let json = d.to_json();
        assert!(json.contains("we\\\"ird\\\\name"));
        assert!(json.contains("line\\nbreak"));
    }

    #[test]
    fn jsonl_is_one_line_per_diag() {
        let d = Diagnostic {
            code: codes::NO_MAIN,
            func: String::new(),
            loc: DiagLoc::Function,
            message: "program has no `main`".to_string(),
        };
        let out = to_jsonl(&[d.clone(), d]);
        assert_eq!(out.lines().count(), 2);
    }
}
