//! Layer 2: intra-procedural abstract interpretation over an interval
//! domain.
//!
//! Every register is tracked as either an integer interval or a pointer
//! into a statically-sized allocation site carrying a byte-offset
//! interval *and a window*: a site-relative `[win_lo, win_hi)` range that
//! is a guaranteed subset of whatever bounds the runtime pointer carries.
//! Windows start at `[0, site_size)` and only ever shrink (joins
//! intersect them; field selection narrows them), which is what makes
//! elision sound against the VM's *subobject* narrowing: an access proven
//! inside the window is inside any runtime bounds the pointer can have,
//! narrowed or not.
//!
//! Termination: interval joins hull offsets, and loop heads (back-edge
//! targets) widen after a couple of joins — a decreased low bound goes to
//! `-inf`, an increased high bound to `+inf`, and any window still moving
//! at a widening point collapses to the empty window (proving nothing
//! through that pointer, which is always sound).
//!
//! The infinity sentinels are `i64::MIN`/`i64::MAX`; arithmetic clamps
//! into the open range between them, so an immediate that happens to
//! *be* `i64::MAX` is conflated with `+inf` — a pure precision loss,
//! never a soundness one (sentinel-ended intervals are never proven).

use crate::diag::{codes, DiagLoc, Diagnostic};
use crate::verify::verify;
use ifp_compiler::instrument::ElisionPlan;
use ifp_compiler::ir::{BinOp, Function, GepStep, Op, Operand, Program, Terminator};
use ifp_compiler::types::{Type, TypeTable};
use std::collections::BTreeMap;

const NEG_INF: i64 = i64::MIN;
const POS_INF: i64 = i64::MAX;

fn clamp128(v: i128) -> i64 {
    if v >= i128::from(POS_INF) {
        POS_INF
    } else if v <= i128::from(NEG_INF) {
        NEG_INF
    } else {
        v as i64
    }
}

/// A closed integer interval with `i64::MIN`/`i64::MAX` as `-inf`/`+inf`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Itv {
    lo: i64,
    hi: i64,
}

impl Itv {
    const TOP: Itv = Itv {
        lo: NEG_INF,
        hi: POS_INF,
    };

    fn point(v: i64) -> Itv {
        Itv { lo: v, hi: v }
    }

    /// Both ends finite (no sentinel) — the precondition for any proof.
    fn is_finite(self) -> bool {
        self.lo != NEG_INF && self.hi != POS_INF
    }

    fn hull(a: Itv, b: Itv) -> Itv {
        Itv {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }

    fn add(self, o: Itv) -> Itv {
        let lo = if self.lo == NEG_INF || o.lo == NEG_INF {
            NEG_INF
        } else {
            clamp128(i128::from(self.lo) + i128::from(o.lo))
        };
        let hi = if self.hi == POS_INF || o.hi == POS_INF {
            POS_INF
        } else {
            clamp128(i128::from(self.hi) + i128::from(o.hi))
        };
        Itv { lo, hi }
    }

    fn sub(self, o: Itv) -> Itv {
        let lo = if self.lo == NEG_INF || o.hi == POS_INF {
            NEG_INF
        } else {
            clamp128(i128::from(self.lo) - i128::from(o.hi))
        };
        let hi = if self.hi == POS_INF || o.lo == NEG_INF {
            POS_INF
        } else {
            clamp128(i128::from(self.hi) - i128::from(o.lo))
        };
        Itv { lo, hi }
    }

    fn mul(self, o: Itv) -> Itv {
        if !self.is_finite() || !o.is_finite() {
            return Itv::TOP;
        }
        let c = [
            i128::from(self.lo) * i128::from(o.lo),
            i128::from(self.lo) * i128::from(o.hi),
            i128::from(self.hi) * i128::from(o.lo),
            i128::from(self.hi) * i128::from(o.hi),
        ];
        Itv {
            lo: clamp128(c.iter().copied().min().unwrap_or(0)),
            hi: clamp128(c.iter().copied().max().unwrap_or(0)),
        }
    }

    /// Scale by a non-negative constant (an element stride).
    fn scale(self, k: i64) -> Itv {
        if k == 0 {
            return Itv::point(0);
        }
        self.mul(Itv::point(k))
    }

    fn singleton(self) -> Option<i64> {
        (self.lo == self.hi && self.is_finite()).then_some(self.lo)
    }

    /// Standard interval widening: an end still moving goes to infinity.
    fn widen(old: Itv, new: Itv) -> Itv {
        Itv {
            lo: if new.lo < old.lo { NEG_INF } else { old.lo },
            hi: if new.hi > old.hi { POS_INF } else { old.hi },
        }
    }
}

/// A pointer into allocation site `site` at byte offsets `off`, with a
/// window `[win_lo, win_hi)` guaranteed to be inside any bounds the
/// runtime pointer carries. The invariant `0 <= win_lo` always holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct AbsPtr {
    site: u32,
    off: Itv,
    win_lo: i64,
    win_hi: i64,
}

/// Abstract value of one register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsVal {
    /// Unknown (loaded values, call results, parameters, foreign pointers).
    Top,
    /// An integer interval.
    Int(Itv),
    /// A pointer into a known-size allocation site.
    Ptr(AbsPtr),
}

fn join_val(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(Itv::hull(x, y)),
        (AbsVal::Ptr(p), AbsVal::Ptr(q)) if p.site == q.site => AbsVal::Ptr(AbsPtr {
            site: p.site,
            off: Itv::hull(p.off, q.off),
            // Windows are promises, so a join keeps only what both sides
            // promise: the intersection.
            win_lo: p.win_lo.max(q.win_lo),
            win_hi: p.win_hi.min(q.win_hi),
        }),
        _ => AbsVal::Top,
    }
}

fn widen_val(old: AbsVal, new: AbsVal) -> AbsVal {
    if old == new {
        return old;
    }
    match (old, new) {
        (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(Itv::widen(x, y)),
        (AbsVal::Ptr(p), AbsVal::Ptr(q)) if p.site == q.site => {
            // A window still moving at a widening point collapses to the
            // empty window so the chain is finite.
            let (win_lo, win_hi) = if p.win_lo == q.win_lo && p.win_hi == q.win_hi {
                (p.win_lo, p.win_hi)
            } else {
                (0, 0)
            };
            AbsVal::Ptr(AbsPtr {
                site: p.site,
                off: Itv::widen(p.off, q.off),
                win_lo,
                win_hi,
            })
        }
        _ => AbsVal::Top,
    }
}

/// Classification of one load/store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Statically inside the window — the runtime bounds check must pass.
    ProvenIn,
    /// Statically outside the allocation on every path — a compile-time
    /// lint; never elided (the trap is the desired behavior).
    ProvenOob,
    /// Anything else; keeps full instrumentation.
    Unknown,
}

/// Result of running [`analyze`] over a whole program.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Verifier diagnostics; when non-empty, layer 2 is skipped and the
    /// elision plan is empty.
    pub verifier: Vec<Diagnostic>,
    /// `IFP-A001` proven-OOB lints.
    pub lints: Vec<Diagnostic>,
    /// Accesses (in instrumented functions) proven in-bounds.
    pub proven_in: u64,
    /// Accesses proven out-of-bounds on every path.
    pub proven_oob: u64,
    /// Accesses the analysis could not classify.
    pub unknown: u64,
    /// The per-op elision plan derived from the classification.
    pub elision: ElisionPlan,
}

/// Runs the verifier, then (when it is clean) the interval analysis over
/// every instrumented function, producing lints, classification counts,
/// and the elision plan.
#[must_use]
pub fn analyze(program: &Program) -> AnalysisReport {
    let verifier = verify(program);
    let mut report = AnalysisReport {
        verifier,
        elision: ElisionPlan::empty_for(program),
        ..AnalysisReport::default()
    };
    if !report.verifier.is_empty() {
        return report;
    }
    for (fi, f) in program.funcs.iter().enumerate() {
        if !f.instrumented || f.blocks.is_empty() {
            continue;
        }
        analyze_function(program, fi, f, &mut report);
    }
    report
}

/// Computes just the elision plan (the VM's entry point).
#[must_use]
pub fn elision_plan(program: &Program) -> ElisionPlan {
    analyze(program).elision
}

/// One allocation site with a statically known byte size.
struct Site {
    size: u64,
}

struct FuncCtx<'a> {
    types: &'a TypeTable,
    sites: Vec<Site>,
    /// `(block, op)` → site id, for ops that create a known-size object.
    site_at: BTreeMap<(usize, usize), u32>,
}

fn collect_sites<'a>(program: &'a Program, f: &Function) -> FuncCtx<'a> {
    let types = &program.types;
    let mut sites = Vec::new();
    let mut site_at = BTreeMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            let size = match op {
                Op::Alloca { ty, count, .. } => {
                    Some(u64::from(types.size_of(*ty)) * u64::from(*count))
                }
                // The VM clamps the element count to at least one, so the
                // static size must match that exact rule.
                Op::Malloc {
                    ty,
                    count: Operand::Imm(c),
                    ..
                } => Some(u64::from(types.size_of(*ty)) * (*c).max(1) as u64),
                Op::AddrOfGlobal { global, .. } => program
                    .globals
                    .get(*global)
                    .map(|g| u64::from(types.size_of(g.ty))),
                _ => None,
            };
            if let Some(size) = size {
                let id = u32::try_from(sites.len()).unwrap_or(u32::MAX);
                sites.push(Site { size });
                site_at.insert((bi, oi), id);
            }
        }
    }
    FuncCtx {
        types,
        sites,
        site_at,
    }
}

fn abs_of(state: &[AbsVal], o: Operand) -> AbsVal {
    match o {
        Operand::Reg(r) => state.get(r.0 as usize).copied().unwrap_or(AbsVal::Top),
        Operand::Imm(v) => AbsVal::Int(Itv::point(v)),
    }
}

fn int_of(state: &[AbsVal], o: Operand) -> Itv {
    match abs_of(state, o) {
        AbsVal::Int(i) => i,
        _ => Itv::TOP,
    }
}

fn eval_bin_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    match op {
        // Comparisons always produce 0 or 1.
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Ult | BinOp::Ule => {
            AbsVal::Int(Itv { lo: 0, hi: 1 })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(match op {
                BinOp::Add => x.add(y),
                BinOp::Sub => x.sub(y),
                _ => x.mul(y),
            }),
            _ => AbsVal::Top,
        },
        _ => AbsVal::Top,
    }
}

/// The GEP transfer: offset arithmetic plus window narrowing. Mirrors the
/// VM's `exec_gep` address walk, and under-approximates its bounds
/// narrowing: the VM intersects incoming bounds with the *last* selected
/// field's extent, while we intersect the window with *every* field
/// extent whose base offset is a single point (and collapse the window
/// when it is not) — always a subset of what the runtime keeps.
fn transfer_gep(ctx: &FuncCtx<'_>, state: &[AbsVal], op: &Op) -> AbsVal {
    let Op::Gep {
        base,
        base_ty,
        steps,
        ..
    } = op
    else {
        return AbsVal::Top;
    };
    let AbsVal::Ptr(p) = abs_of(state, *base) else {
        return AbsVal::Top;
    };
    let mut off = p.off;
    let mut win_lo = p.win_lo;
    let mut win_hi = p.win_hi;
    let mut cur = *base_ty;
    for step in steps {
        match step {
            GepStep::Field(i) => {
                let Type::Struct { fields, .. } = ctx.types.get(cur) else {
                    return AbsVal::Top;
                };
                let Some(field) = fields.get(*i as usize) else {
                    return AbsVal::Top;
                };
                off = off.add(Itv::point(i64::from(field.offset)));
                cur = field.ty;
                let fsize = i64::from(ctx.types.size_of(cur));
                if let Some(c) = off.singleton() {
                    win_lo = win_lo.max(c);
                    win_hi = win_hi.min(c.saturating_add(fsize));
                } else {
                    // The runtime narrows to a subobject we cannot pin
                    // down; promise nothing through this pointer.
                    win_lo = 0;
                    win_hi = 0;
                }
            }
            GepStep::Index(o) => {
                let elem = match ctx.types.get(cur) {
                    Type::Array { elem, .. } => {
                        cur = *elem;
                        *elem
                    }
                    _ => cur,
                };
                let idx = int_of(state, *o);
                off = off.add(idx.scale(i64::from(ctx.types.size_of(elem))));
            }
        }
    }
    AbsVal::Ptr(AbsPtr {
        site: p.site,
        off,
        win_lo,
        win_hi,
    })
}

fn transfer_op(ctx: &FuncCtx<'_>, state: &mut Vec<AbsVal>, bi: usize, oi: usize, op: &Op) {
    let set = |state: &mut Vec<AbsVal>, r: u32, v: AbsVal| {
        if let Some(slot) = state.get_mut(r as usize) {
            *slot = v;
        }
    };
    match op {
        Op::Bin { dst, op, a, b } => {
            let v = eval_bin_abs(*op, abs_of(state, *a), abs_of(state, *b));
            set(state, dst.0, v);
        }
        Op::Mov { dst, a } => {
            let v = abs_of(state, *a);
            set(state, dst.0, v);
        }
        Op::Alloca { dst, .. } | Op::Malloc { dst, .. } | Op::AddrOfGlobal { dst, .. } => {
            let v = ctx.site_at.get(&(bi, oi)).map_or(AbsVal::Top, |&site| {
                let size = ctx.sites[site as usize].size;
                AbsVal::Ptr(AbsPtr {
                    site,
                    off: Itv::point(0),
                    win_lo: 0,
                    win_hi: i64::try_from(size).unwrap_or(POS_INF - 1),
                })
            });
            set(state, dst.0, v);
        }
        Op::Free { .. } | Op::Store { .. } => {}
        Op::Gep { dst, .. } => {
            let v = transfer_gep(ctx, state, op);
            set(state, dst.0, v);
        }
        Op::Load { dst, .. } => set(state, dst.0, AbsVal::Top),
        Op::Call { dst, .. } | Op::CallExt { dst, .. } => {
            if let Some(d) = dst {
                set(state, d.0, AbsVal::Top);
            }
        }
    }
}

fn successors(term: &Terminator) -> impl Iterator<Item = usize> {
    let (a, b) = match term {
        Terminator::Jmp(t) => (Some(*t), None),
        Terminator::Br {
            then_bb, else_bb, ..
        } => (Some(*then_bb), Some(*else_bb)),
        Terminator::Ret(_) => (None, None),
    };
    a.into_iter().chain(b)
}

/// Back-edge targets via iterative DFS (gray-node edges).
fn loop_heads(f: &Function) -> Vec<bool> {
    let nb = f.blocks.len();
    let mut heads = vec![false; nb];
    // 0 = white, 1 = gray (on stack), 2 = black.
    let mut color = vec![0u8; nb];
    let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
    color[0] = 1;
    stack.push((0, successors(&f.blocks[0].term).collect()));
    while let Some((node, succs)) = stack.last_mut() {
        if let Some(s) = succs.pop() {
            match color[s] {
                0 => {
                    color[s] = 1;
                    let next: Vec<usize> = successors(&f.blocks[s].term).collect();
                    stack.push((s, next));
                }
                1 => heads[s] = true,
                _ => {}
            }
        } else {
            color[*node] = 2;
            stack.pop();
        }
    }
    heads
}

/// Number of joins at a loop head before widening kicks in.
const WIDEN_THRESHOLD: u32 = 2;

/// Fixpoint iteration budget per function; exceeded means the function
/// simply gets no elision (sound, and in practice unreachable for the
/// small CFGs the builder and generator emit).
fn fixpoint_fuel(nb: usize) -> usize {
    1_000 + 400 * nb
}

type State = Vec<AbsVal>;

fn run_fixpoint(ctx: &FuncCtx<'_>, f: &Function) -> Option<Vec<Option<State>>> {
    let nb = f.blocks.len();
    let heads = loop_heads(f);
    let entry: State = vec![AbsVal::Top; f.num_regs as usize];
    let mut inset: Vec<Option<State>> = vec![None; nb];
    inset[0] = Some(entry);
    let mut joins = vec![0u32; nb];
    let mut work = vec![0usize];
    let mut fuel = fixpoint_fuel(nb);
    while let Some(bi) = work.pop() {
        if fuel == 0 {
            return None;
        }
        fuel -= 1;
        let Some(start) = inset[bi].clone() else {
            continue;
        };
        let mut out = start;
        for (oi, op) in f.blocks[bi].ops.iter().enumerate() {
            transfer_op(ctx, &mut out, bi, oi, op);
        }
        for s in successors(&f.blocks[bi].term) {
            if s >= nb {
                continue;
            }
            let changed = match &inset[s] {
                None => {
                    inset[s] = Some(out.clone());
                    true
                }
                Some(old) => {
                    joins[s] += 1;
                    let widen = heads[s] && joins[s] > WIDEN_THRESHOLD;
                    let mut next = Vec::with_capacity(old.len());
                    for (o, n) in old.iter().zip(&out) {
                        let j = join_val(*o, *n);
                        next.push(if widen { widen_val(*o, j) } else { j });
                    }
                    if Some(&next) != inset[s].as_ref() {
                        inset[s] = Some(next);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    Some(inset)
}

/// Syntactic register census used by the discharge fixpoint.
#[derive(Clone, Default)]
struct RegCensus {
    defs: u32,
    /// The `(block, op)` of the defining GEP when `defs == 1` and the
    /// single def is a GEP.
    gep_def: Option<(usize, usize)>,
    /// Uses as the pointer operand of a load/store.
    access_uses: Vec<(usize, usize)>,
    /// Uses as the base of another GEP.
    gep_base_uses: Vec<(usize, usize)>,
    /// Every other read (operand of arithmetic, stored value, call
    /// argument, return value, branch condition, free, GEP index…).
    other_uses: u32,
    total_uses: u32,
}

fn census(f: &Function) -> Vec<RegCensus> {
    let mut regs: Vec<RegCensus> = vec![RegCensus::default(); f.num_regs as usize];
    let other = |regs: &mut Vec<RegCensus>, o: &Operand| {
        if let Operand::Reg(r) = o {
            if let Some(c) = regs.get_mut(r.0 as usize) {
                c.other_uses += 1;
                c.total_uses += 1;
            }
        }
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            match op {
                Op::Bin { a, b, .. } => {
                    other(&mut regs, a);
                    other(&mut regs, b);
                }
                Op::Mov { a, .. } => other(&mut regs, a),
                Op::Alloca { .. } | Op::AddrOfGlobal { .. } => {}
                Op::Malloc { count, .. } => other(&mut regs, count),
                Op::Free { ptr } => other(&mut regs, ptr),
                Op::Gep { base, steps, .. } => {
                    if let Operand::Reg(r) = base {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.gep_base_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                    for s in steps {
                        if let GepStep::Index(o) = s {
                            other(&mut regs, o);
                        }
                    }
                }
                Op::Load { ptr, .. } => {
                    if let Operand::Reg(r) = ptr {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.access_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                }
                Op::Store { ptr, val, .. } => {
                    if let Operand::Reg(r) = ptr {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.access_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                    other(&mut regs, val);
                }
                Op::Call { args, .. } | Op::CallExt { args, .. } => {
                    for a in args {
                        other(&mut regs, a);
                    }
                }
            }
            // Defs.
            let def = match op {
                Op::Bin { dst, .. }
                | Op::Mov { dst, .. }
                | Op::Alloca { dst, .. }
                | Op::Malloc { dst, .. }
                | Op::Gep { dst, .. }
                | Op::Load { dst, .. }
                | Op::AddrOfGlobal { dst, .. } => Some(dst.0),
                Op::Call { dst, .. } | Op::CallExt { dst, .. } => dst.map(|r| r.0),
                Op::Free { .. } | Op::Store { .. } => None,
            };
            if let Some(d) = def {
                if let Some(c) = regs.get_mut(d as usize) {
                    c.defs += 1;
                    c.gep_def = if c.defs == 1 && matches!(op, Op::Gep { .. }) {
                        Some((bi, oi))
                    } else {
                        None
                    };
                }
            }
        }
        match &block.term {
            Terminator::Br { cond, .. } => other(&mut regs, cond),
            Terminator::Ret(Some(v)) => other(&mut regs, v),
            _ => {}
        }
    }
    regs
}

fn classify(ctx: &FuncCtx<'_>, v: AbsVal, access_size: u64) -> AccessClass {
    let AbsVal::Ptr(p) = v else {
        return AccessClass::Unknown;
    };
    let Some(site) = ctx.sites.get(p.site as usize) else {
        return AccessClass::Unknown;
    };
    let a = i64::try_from(access_size).unwrap_or(POS_INF - 1);
    if p.off.is_finite() && p.off.lo >= p.win_lo && p.off.hi.saturating_add(a) <= p.win_hi {
        return AccessClass::ProvenIn;
    }
    let size = i64::try_from(site.size).unwrap_or(POS_INF - 1);
    let below = p.off.hi != POS_INF && p.off.hi < 0;
    let above = p.off.lo != NEG_INF && p.off.lo.saturating_add(a) > size;
    if below || above {
        return AccessClass::ProvenOob;
    }
    AccessClass::Unknown
}

/// Whether a GEP result is provably inside its own window — meaning the
/// tag path's poison reclassification at this GEP must yield `Valid`
/// (`classify_addr` is `Valid` strictly below the upper bound).
fn gep_in_window(v: AbsVal) -> bool {
    let AbsVal::Ptr(p) = v else { return false };
    p.off.is_finite() && p.off.lo >= p.win_lo && p.off.hi < p.win_hi
}

fn analyze_function(program: &Program, fi: usize, f: &Function, report: &mut AnalysisReport) {
    let ctx = collect_sites(program, f);
    let Some(inset) = run_fixpoint(&ctx, f) else {
        return;
    };

    // Replay every reachable block from its stable in-state, recording
    // per-access classifications and per-GEP window proofs.
    let mut access_class: BTreeMap<(usize, usize), AccessClass> = BTreeMap::new();
    let mut gep_ok: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let Some(start) = &inset[bi] else { continue };
        let mut state = start.clone();
        for (oi, op) in block.ops.iter().enumerate() {
            match op {
                Op::Load { ptr, ty, .. } | Op::Store { ptr, ty, .. } => {
                    let size = u64::from(ctx.types.size_of(*ty));
                    let class = classify(&ctx, abs_of(&state, *ptr), size);
                    access_class.insert((bi, oi), class);
                }
                Op::Gep { .. } => {
                    let v = transfer_gep(&ctx, &state, op);
                    gep_ok.insert((bi, oi), gep_in_window(v));
                }
                _ => {}
            }
            transfer_op(&ctx, &mut state, bi, oi, op);
        }
    }

    // Lints + counts.
    for (&(bi, oi), &class) in &access_class {
        match class {
            AccessClass::ProvenIn => report.proven_in += 1,
            AccessClass::Unknown => report.unknown += 1,
            AccessClass::ProvenOob => {
                report.proven_oob += 1;
                let what = match &f.blocks[bi].ops[oi] {
                    Op::Store { .. } => "store",
                    _ => "load",
                };
                report.lints.push(Diagnostic {
                    code: codes::PROVEN_OOB,
                    func: f.name.clone(),
                    loc: DiagLoc::Op { block: bi, op: oi },
                    message: format!("{what} is provably out of bounds on every path"),
                });
            }
        }
    }

    // Discharge fixpoint for tag-update elision: a GEP destination is
    // discharged when it is defined exactly once, its result is provably
    // inside its window, and every use is either a proven (check-elided)
    // access or the base of another discharged GEP. Discharged pointers'
    // tags and bounds are never consulted, so skipping the tag update
    // cannot change any observable behavior.
    let regs = census(f);
    let mut discharged = vec![false; regs.len()];
    for (r, c) in regs.iter().enumerate() {
        discharged[r] = c.defs == 1
            && c.gep_def
                .is_some_and(|at| gep_ok.get(&at).copied().unwrap_or(false))
            && c.other_uses == 0
            && c.access_uses
                .iter()
                .all(|at| matches!(access_class.get(at), Some(AccessClass::ProvenIn)));
    }
    loop {
        let mut changed = false;
        for r in 0..regs.len() {
            if !discharged[r] {
                continue;
            }
            let all_bases_ok =
                regs[r]
                    .gep_base_uses
                    .iter()
                    .all(|&(bi, oi)| match f.blocks[bi].ops.get(oi) {
                        Some(Op::Gep { dst, .. }) => {
                            discharged.get(dst.0 as usize).copied().unwrap_or(false)
                        }
                        _ => false,
                    });
            if !all_bases_ok {
                discharged[r] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Emit the plan.
    let plan = &mut report.elision.funcs[fi];
    for (&(bi, oi), &class) in &access_class {
        if class == AccessClass::ProvenIn {
            plan[bi][oi].check = true;
        }
    }
    for (r, c) in regs.iter().enumerate() {
        if discharged[r] {
            if let Some((bi, oi)) = c.gep_def {
                plan[bi][oi].tag_update = true;
            }
        }
    }
    // Promote elision: a pointer load whose destination is never read
    // anywhere in the function gets no promote — matching the paper's
    // compiler, which hoists promote at use sites only.
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            if let Op::Load { dst, .. } = op {
                if regs.get(dst.0 as usize).is_some_and(|c| c.total_uses == 0) {
                    plan[bi][oi].promote = true;
                }
            }
        }
    }
}
