//! Layer 2: intra-procedural abstract interpretation over an interval
//! domain, extended with the layer-3 hooks ([`crate::interproc`]).
//!
//! Every register is tracked as either an integer interval or a pointer
//! into an allocation site carrying a byte-offset interval *and a
//! window*: a site-relative `[win_lo, win_hi)` range that is a
//! guaranteed subset of whatever bounds the runtime pointer carries.
//! Windows for local sites start at `[0, site_size)`; synthetic sites
//! (function parameters and summarized call returns) start at whatever
//! window the inter-procedural layer proved, which may extend below
//! zero (a pointer into the middle of a caller's object). Windows only
//! ever shrink (joins intersect them; field selection narrows them),
//! which is what makes elision sound against the VM's *subobject*
//! narrowing: an access proven inside the window is inside any runtime
//! bounds the pointer can have, narrowed or not.
//!
//! Branch conditions refine the states flowing into the two successors:
//! when a block's `Br` condition is the block's last definition of a
//! comparison whose operands are stable afterwards, the then/else edges
//! intersect the compared intervals with the implied half-ranges. This
//! is the monotone-induction mechanism: at a widened loop head the
//! counter is `[0, +inf]`, and the `i < n` guard narrows the body state
//! back to `[0, n-1]`, so per-iteration accesses stay provable — the
//! per-iteration check collapses into the one guard the loop already
//! executes.
//!
//! Termination: interval joins hull offsets, and loop heads (back-edge
//! targets) widen after a couple of joins — a decreased low bound goes to
//! `-inf`, an increased high bound to `+inf`, and any window still moving
//! at a widening point collapses to the empty window (proving nothing
//! through that pointer, which is always sound). Edge refinement is a
//! monotone narrowing applied to the propagated copy only, so the
//! widened chain at each head is still finite, with the fixpoint fuel
//! as a hard backstop.
//!
//! The infinity sentinels are `i64::MIN`/`i64::MAX`; arithmetic clamps
//! into the open range between them, so an immediate that happens to
//! *be* `i64::MAX` is conflated with `+inf` — a pure precision loss,
//! never a soundness one (sentinel-ended intervals are never proven).

use crate::diag::{codes, DiagLoc, Diagnostic};
use crate::interproc::{self, Interproc, ParamFact, RetSummary};
use crate::verify::verify;
use ifp_compiler::instrument::ElisionPlan;
use ifp_compiler::ir::{BinOp, Function, GepStep, Op, Operand, Program, Terminator};
use ifp_compiler::types::{Type, TypeTable};
use std::collections::BTreeMap;

pub(crate) const NEG_INF: i64 = i64::MIN;
pub(crate) const POS_INF: i64 = i64::MAX;

fn clamp128(v: i128) -> i64 {
    if v >= i128::from(POS_INF) {
        POS_INF
    } else if v <= i128::from(NEG_INF) {
        NEG_INF
    } else {
        v as i64
    }
}

/// A closed integer interval with `i64::MIN`/`i64::MAX` as `-inf`/`+inf`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Itv {
    pub(crate) lo: i64,
    pub(crate) hi: i64,
}

impl Itv {
    pub(crate) const TOP: Itv = Itv {
        lo: NEG_INF,
        hi: POS_INF,
    };

    pub(crate) fn point(v: i64) -> Itv {
        Itv { lo: v, hi: v }
    }

    /// Both ends finite (no sentinel) — the precondition for any proof.
    pub(crate) fn is_finite(self) -> bool {
        self.lo != NEG_INF && self.hi != POS_INF
    }

    /// Intersection; `None` when the result is empty.
    pub(crate) fn meet(self, o: Itv) -> Option<Itv> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Itv { lo, hi })
    }

    pub(crate) fn hull(a: Itv, b: Itv) -> Itv {
        Itv {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }

    pub(crate) fn add(self, o: Itv) -> Itv {
        let lo = if self.lo == NEG_INF || o.lo == NEG_INF {
            NEG_INF
        } else {
            clamp128(i128::from(self.lo) + i128::from(o.lo))
        };
        let hi = if self.hi == POS_INF || o.hi == POS_INF {
            POS_INF
        } else {
            clamp128(i128::from(self.hi) + i128::from(o.hi))
        };
        Itv { lo, hi }
    }

    fn sub(self, o: Itv) -> Itv {
        let lo = if self.lo == NEG_INF || o.hi == POS_INF {
            NEG_INF
        } else {
            clamp128(i128::from(self.lo) - i128::from(o.hi))
        };
        let hi = if self.hi == POS_INF || o.lo == NEG_INF {
            POS_INF
        } else {
            clamp128(i128::from(self.hi) - i128::from(o.lo))
        };
        Itv { lo, hi }
    }

    fn mul(self, o: Itv) -> Itv {
        if !self.is_finite() || !o.is_finite() {
            return Itv::TOP;
        }
        let c = [
            i128::from(self.lo) * i128::from(o.lo),
            i128::from(self.lo) * i128::from(o.hi),
            i128::from(self.hi) * i128::from(o.lo),
            i128::from(self.hi) * i128::from(o.hi),
        ];
        Itv {
            lo: clamp128(c.iter().copied().min().unwrap_or(0)),
            hi: clamp128(c.iter().copied().max().unwrap_or(0)),
        }
    }

    /// Scale by a non-negative constant (an element stride).
    fn scale(self, k: i64) -> Itv {
        if k == 0 {
            return Itv::point(0);
        }
        self.mul(Itv::point(k))
    }

    pub(crate) fn singleton(self) -> Option<i64> {
        (self.lo == self.hi && self.is_finite()).then_some(self.lo)
    }

    /// Standard interval widening: an end still moving goes to infinity.
    fn widen(old: Itv, new: Itv) -> Itv {
        Itv {
            lo: if new.lo < old.lo { NEG_INF } else { old.lo },
            hi: if new.hi > old.hi { POS_INF } else { old.hi },
        }
    }
}

/// A pointer into allocation site `site` at byte offsets `off`, with a
/// window `[win_lo, win_hi)` guaranteed to be inside any bounds the
/// runtime pointer carries. Local sites keep `0 <= win_lo`; synthetic
/// sites (parameters, summarized call returns) may carry negative
/// `win_lo` — the entry pointer can sit mid-object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct AbsPtr {
    pub(crate) site: u32,
    pub(crate) off: Itv,
    pub(crate) win_lo: i64,
    pub(crate) win_hi: i64,
    /// Attribution breadcrumb: the packed `(block << 16) | op` of the
    /// call whose summary application produced this value, or
    /// [`VIA_NONE`] for locally-derived pointers. Pure telemetry — never
    /// consulted by a proof — but kept in the lattice so proofs that
    /// needed a summary can be credited to the call site.
    pub(crate) via: u32,
}

/// `via` value of pointers not derived through a call summary.
pub(crate) const VIA_NONE: u32 = u32::MAX;

/// Packs call coordinates into an [`AbsPtr::via`] breadcrumb.
pub(crate) fn via_pack(bi: usize, oi: usize) -> u32 {
    match (u32::try_from(bi), u32::try_from(oi)) {
        (Ok(b), Ok(o)) if b < 0x8000 && o < 0x1_0000 => (b << 16) | o,
        _ => VIA_NONE,
    }
}

/// Prefers an existing breadcrumb over a new one so repeated joins
/// stabilize (the result is always one of the inputs).
fn via_join(a: u32, b: u32) -> u32 {
    if a != VIA_NONE {
        a
    } else {
        b
    }
}

/// Abstract value of one register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AbsVal {
    /// Unknown (loaded values, unsummarized call results, foreign
    /// pointers).
    Top,
    /// An integer interval.
    Int(Itv),
    /// A pointer into a known-size allocation site.
    Ptr(AbsPtr),
}

pub(crate) fn join_val(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(Itv::hull(x, y)),
        (AbsVal::Ptr(p), AbsVal::Ptr(q)) if p.site == q.site => AbsVal::Ptr(AbsPtr {
            site: p.site,
            off: Itv::hull(p.off, q.off),
            // Windows are promises, so a join keeps only what both sides
            // promise: the intersection.
            win_lo: p.win_lo.max(q.win_lo),
            win_hi: p.win_hi.min(q.win_hi),
            via: via_join(p.via, q.via),
        }),
        _ => AbsVal::Top,
    }
}

fn widen_val(old: AbsVal, new: AbsVal) -> AbsVal {
    if old == new {
        return old;
    }
    match (old, new) {
        (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(Itv::widen(x, y)),
        (AbsVal::Ptr(p), AbsVal::Ptr(q)) if p.site == q.site => {
            // A window still moving at a widening point collapses to the
            // empty window so the chain is finite.
            let (win_lo, win_hi) = if p.win_lo == q.win_lo && p.win_hi == q.win_hi {
                (p.win_lo, p.win_hi)
            } else {
                (0, 0)
            };
            AbsVal::Ptr(AbsPtr {
                site: p.site,
                off: Itv::widen(p.off, q.off),
                win_lo,
                win_hi,
                via: via_join(p.via, q.via),
            })
        }
        _ => AbsVal::Top,
    }
}

/// Classification of one load/store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessClass {
    /// Statically inside the window — the runtime bounds check must pass.
    ProvenIn,
    /// Statically outside the allocation on every path — a compile-time
    /// lint; never elided (the trap is the desired behavior).
    ProvenOob,
    /// Anything else; keeps full instrumentation.
    Unknown,
}

/// Result of running [`analyze`] over a whole program.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// Verifier diagnostics; when non-empty, layer 2 is skipped and the
    /// elision plan is empty.
    pub verifier: Vec<Diagnostic>,
    /// `IFP-A001` proven-OOB lints.
    pub lints: Vec<Diagnostic>,
    /// `IFP-A002` notes: calls whose inter-procedural summary
    /// application narrowed previously-unknown accesses to proven.
    pub summaries: Vec<Diagnostic>,
    /// Accesses (in instrumented functions) proven in-bounds.
    pub proven_in: u64,
    /// Accesses proven out-of-bounds on every path.
    pub proven_oob: u64,
    /// Accesses the analysis could not classify.
    pub unknown: u64,
    /// Of the proven accesses, how many were proved through a synthetic
    /// site — a parameter window or a summarized call return — i.e. only
    /// thanks to the inter-procedural layer.
    pub summary_hits: u64,
    /// The per-op elision plan derived from the classification.
    pub elision: ElisionPlan,
}

/// Per-access attribution of inter-procedural proofs, accumulated while
/// classifying and then folded into `IFP-A002` diagnostics.
#[derive(Default)]
struct SummaryAttr {
    /// Per callee function index: accesses inside it proven through its
    /// parameter windows (the join of what every caller passes).
    param_hits: BTreeMap<usize, u64>,
    /// Per call site `(func, block, op)`: accesses in the *caller*
    /// proven through the fresh window of this call's return summary.
    call_hits: BTreeMap<(usize, usize, usize), u64>,
}

/// Runs the verifier, then (when it is clean) the inter-procedural
/// summary pass and the interval analysis over every instrumented
/// function, producing lints, classification counts, and the elision
/// plan.
#[must_use]
pub fn analyze(program: &Program) -> AnalysisReport {
    let verifier = verify(program);
    let mut report = AnalysisReport {
        verifier,
        elision: ElisionPlan::empty_for(program),
        ..AnalysisReport::default()
    };
    if !report.verifier.is_empty() {
        return report;
    }
    let ip = interproc::compute(program);
    let mut attr = SummaryAttr::default();
    for (fi, f) in program.funcs.iter().enumerate() {
        if !f.instrumented || f.blocks.is_empty() {
            continue;
        }
        analyze_function(program, fi, f, &ip, &mut report, &mut attr);
    }
    emit_summary_diags(program, &attr, &mut report);
    report
}

/// Folds the proof attribution into `IFP-A002` diagnostics: one per
/// call site whose callee summary (parameter windows or a fresh return
/// window) turned previously-unknown accesses into proven ones.
fn emit_summary_diags(program: &Program, attr: &SummaryAttr, report: &mut AnalysisReport) {
    report.summary_hits =
        attr.param_hits.values().sum::<u64>() + attr.call_hits.values().sum::<u64>();
    for (fi, f) in program.funcs.iter().enumerate() {
        for (bi, block) in f.blocks.iter().enumerate() {
            for (oi, op) in block.ops.iter().enumerate() {
                let Op::Call { func, .. } = op else { continue };
                let callee_hits = program
                    .func_id(func)
                    .and_then(|ci| attr.param_hits.get(&ci))
                    .copied()
                    .unwrap_or(0);
                let fresh_hits = attr.call_hits.get(&(fi, bi, oi)).copied().unwrap_or(0);
                let n = callee_hits + fresh_hits;
                if n > 0 {
                    report.summaries.push(Diagnostic {
                        code: codes::SUMMARY_APPLIED,
                        func: f.name.clone(),
                        loc: DiagLoc::Op { block: bi, op: oi },
                        message: format!(
                            "summary of `{func}` narrows {n} previously-unknown \
                             access{} to proven",
                            if n == 1 { "" } else { "es" }
                        ),
                    });
                }
            }
        }
    }
}

/// Computes just the elision plan (the VM's entry point).
#[must_use]
pub fn elision_plan(program: &Program) -> ElisionPlan {
    analyze(program).elision
}

/// What kind of object an abstract allocation site stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SiteKind {
    /// A function parameter's synthetic site: the object behind whatever
    /// pointer the callers pass; its true size is unknown.
    Param,
    /// A local `alloca`.
    Alloca,
    /// A local `malloc` with a constant count.
    Malloc,
    /// The object behind an `addr_of_global`.
    Global,
    /// The fresh object a summarized call returns (a `malloc` performed
    /// inside the callee); its size is known but the object is foreign.
    FreshCall,
}

impl SiteKind {
    /// Synthetic sites come from the inter-procedural layer: their
    /// windows are promises about *foreign* objects, so proofs through
    /// them are summary hits and OOB lints are never raised on them.
    pub(crate) fn synthetic(self) -> bool {
        matches!(self, SiteKind::Param | SiteKind::FreshCall)
    }
}

/// One allocation site.
pub(crate) struct Site {
    /// Static byte size; 0 (and unused) for [`SiteKind::Param`].
    pub(crate) size: u64,
    pub(crate) kind: SiteKind,
}

/// Pre-resolved effect of a `Call` op on its destination register.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CallRet {
    /// The callee returns a fresh allocation: a pointer into `site` at
    /// `off` with window `[win_lo, win_hi)`.
    Fresh {
        site: u32,
        off: Itv,
        win_lo: i64,
        win_hi: i64,
    },
    /// The callee returns a pointer derived from argument `param`:
    /// offset shifted by `off`, bounds possibly narrowed to the
    /// entry-relative `[nlo, nhi)` (each end `None` when unconstrained).
    ParamRel {
        param: u32,
        off: Itv,
        nlo: Option<i64>,
        nhi: Option<i64>,
    },
}

pub(crate) struct FuncCtx<'a> {
    pub(crate) types: &'a TypeTable,
    pub(crate) sites: Vec<Site>,
    /// `(block, op)` → site id, for ops that create a known-size object
    /// (allocations, global addresses, and summarized fresh-return calls).
    pub(crate) site_at: BTreeMap<(usize, usize), u32>,
    /// `(block, op)` → resolved return effect, for `Call` ops whose
    /// callee has a usable summary.
    pub(crate) call_ret: BTreeMap<(usize, usize), CallRet>,
}

/// Builds the per-function analysis context. Sites `0..params` are the
/// parameters' synthetic sites (id = parameter index); op sites follow
/// in program order. `rets` are the callee return summaries (empty slice
/// means every call is opaque).
pub(crate) fn build_ctx<'a>(
    program: &'a Program,
    f: &Function,
    rets: &[RetSummary],
) -> FuncCtx<'a> {
    let types = &program.types;
    let mut sites = Vec::new();
    let mut site_at = BTreeMap::new();
    let mut call_ret = BTreeMap::new();
    for _ in 0..f.params {
        sites.push(Site {
            size: 0,
            kind: SiteKind::Param,
        });
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            let site = match op {
                Op::Alloca { ty, count, .. } => Some((
                    u64::from(types.size_of(*ty)) * u64::from(*count),
                    SiteKind::Alloca,
                )),
                // The VM clamps the element count to at least one, so the
                // static size must match that exact rule.
                Op::Malloc {
                    ty,
                    count: Operand::Imm(c),
                    ..
                } => Some((
                    u64::from(types.size_of(*ty)) * (*c).max(1) as u64,
                    SiteKind::Malloc,
                )),
                Op::AddrOfGlobal { global, .. } => program
                    .globals
                    .get(*global)
                    .map(|g| (u64::from(types.size_of(g.ty)), SiteKind::Global)),
                Op::Call { func, .. } => match program.func_id(func).and_then(|ci| rets.get(ci)) {
                    Some(RetSummary::Fresh {
                        size,
                        off,
                        win_lo,
                        win_hi,
                    }) => {
                        let id = u32::try_from(sites.len()).unwrap_or(u32::MAX);
                        call_ret.insert(
                            (bi, oi),
                            CallRet::Fresh {
                                site: id,
                                off: *off,
                                win_lo: *win_lo,
                                win_hi: *win_hi,
                            },
                        );
                        Some((*size, SiteKind::FreshCall))
                    }
                    Some(RetSummary::ParamRel {
                        param,
                        off,
                        nlo,
                        nhi,
                    }) => {
                        call_ret.insert(
                            (bi, oi),
                            CallRet::ParamRel {
                                param: *param,
                                off: *off,
                                nlo: *nlo,
                                nhi: *nhi,
                            },
                        );
                        None
                    }
                    _ => None,
                },
                _ => None,
            };
            if let Some((size, kind)) = site {
                let id = u32::try_from(sites.len()).unwrap_or(u32::MAX);
                sites.push(Site { size, kind });
                site_at.insert((bi, oi), id);
            }
        }
    }
    FuncCtx {
        types,
        sites,
        site_at,
        call_ret,
    }
}

pub(crate) fn abs_of(state: &[AbsVal], o: Operand) -> AbsVal {
    match o {
        Operand::Reg(r) => state.get(r.0 as usize).copied().unwrap_or(AbsVal::Top),
        Operand::Imm(v) => AbsVal::Int(Itv::point(v)),
    }
}

fn int_of(state: &[AbsVal], o: Operand) -> Itv {
    match abs_of(state, o) {
        AbsVal::Int(i) => i,
        _ => Itv::TOP,
    }
}

fn eval_bin_abs(op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
    // The interval of `a` when it is an integer; `TOP` otherwise. Sound
    // for any register: the VM computes on raw 64-bit values, and every
    // i64 is in `TOP`.
    let raw = |v: AbsVal| match v {
        AbsVal::Int(i) => i,
        _ => Itv::TOP,
    };
    match op {
        // Comparisons always produce 0 or 1.
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Ult | BinOp::Ule => {
            AbsVal::Int(Itv { lo: 0, hi: 1 })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (a, b) {
            (AbsVal::Int(x), AbsVal::Int(y)) => AbsVal::Int(match op {
                BinOp::Add => x.add(y),
                BinOp::Sub => x.sub(y),
                _ => x.mul(y),
            }),
            _ => AbsVal::Top,
        },
        // Remainder by a positive constant lands in `(-n, n)` for *any*
        // dividend (the table-hashing idiom), tightening to `[0, n-1]`
        // when the dividend is known non-negative.
        BinOp::Rem => match raw(b).singleton() {
            Some(n) if n > 0 => {
                let x = raw(a);
                if x.lo >= 0 && x.hi < n {
                    return AbsVal::Int(x);
                }
                AbsVal::Int(Itv {
                    lo: if x.lo >= 0 { 0 } else { -(n - 1) },
                    hi: if x.hi <= 0 { 0 } else { n - 1 },
                })
            }
            _ => AbsVal::Top,
        },
        // Truncating division by a positive constant is monotone, so the
        // endpoints map directly (sentinels stay sentinels).
        BinOp::Div => match (raw(a), raw(b).singleton()) {
            (x, Some(n)) if n > 0 => AbsVal::Int(Itv {
                lo: if x.lo == NEG_INF { NEG_INF } else { x.lo / n },
                hi: if x.hi == POS_INF { POS_INF } else { x.hi / n },
            }),
            _ => AbsVal::Top,
        },
        // Masking with a non-negative constant clears the sign bit and
        // can only lower the magnitude: the result is in `[0, m]`.
        BinOp::And => {
            let m = match (raw(a).singleton(), raw(b).singleton()) {
                (_, Some(m)) if m >= 0 => Some(m),
                (Some(m), _) if m >= 0 => Some(m),
                _ => None,
            };
            match m {
                Some(m) => AbsVal::Int(Itv { lo: 0, hi: m }),
                None => AbsVal::Top,
            }
        }
        _ => AbsVal::Top,
    }
}

/// The GEP transfer: offset arithmetic plus window narrowing. Mirrors the
/// VM's `exec_gep` address walk, and under-approximates its bounds
/// narrowing: the VM intersects incoming bounds with the *last* selected
/// field's extent, while we intersect the window with *every* field
/// extent whose base offset is a single point (and collapse the window
/// when it is not) — always a subset of what the runtime keeps.
fn transfer_gep(ctx: &FuncCtx<'_>, state: &[AbsVal], op: &Op) -> AbsVal {
    let Op::Gep {
        base,
        base_ty,
        steps,
        ..
    } = op
    else {
        return AbsVal::Top;
    };
    let AbsVal::Ptr(p) = abs_of(state, *base) else {
        return AbsVal::Top;
    };
    let mut off = p.off;
    let mut win_lo = p.win_lo;
    let mut win_hi = p.win_hi;
    let mut cur = *base_ty;
    for step in steps {
        match step {
            GepStep::Field(i) => {
                let Type::Struct { fields, .. } = ctx.types.get(cur) else {
                    return AbsVal::Top;
                };
                let Some(field) = fields.get(*i as usize) else {
                    return AbsVal::Top;
                };
                off = off.add(Itv::point(i64::from(field.offset)));
                cur = field.ty;
                let fsize = i64::from(ctx.types.size_of(cur));
                if let Some(c) = off.singleton() {
                    win_lo = win_lo.max(c);
                    win_hi = win_hi.min(c.saturating_add(fsize));
                } else {
                    // The runtime narrows to a subobject we cannot pin
                    // down; promise nothing through this pointer.
                    win_lo = 0;
                    win_hi = 0;
                }
            }
            GepStep::Index(o) => {
                let elem = match ctx.types.get(cur) {
                    Type::Array { elem, .. } => {
                        cur = *elem;
                        *elem
                    }
                    _ => cur,
                };
                let idx = int_of(state, *o);
                off = off.add(idx.scale(i64::from(ctx.types.size_of(elem))));
            }
        }
    }
    AbsVal::Ptr(AbsPtr {
        site: p.site,
        off,
        win_lo,
        win_hi,
        via: p.via,
    })
}

pub(crate) fn transfer_op(
    ctx: &FuncCtx<'_>,
    state: &mut Vec<AbsVal>,
    bi: usize,
    oi: usize,
    op: &Op,
) {
    let set = |state: &mut Vec<AbsVal>, r: u32, v: AbsVal| {
        if let Some(slot) = state.get_mut(r as usize) {
            *slot = v;
        }
    };
    match op {
        Op::Bin { dst, op, a, b } => {
            let v = eval_bin_abs(*op, abs_of(state, *a), abs_of(state, *b));
            set(state, dst.0, v);
        }
        Op::Mov { dst, a } => {
            let v = abs_of(state, *a);
            set(state, dst.0, v);
        }
        Op::Alloca { dst, .. } | Op::Malloc { dst, .. } | Op::AddrOfGlobal { dst, .. } => {
            let v = ctx.site_at.get(&(bi, oi)).map_or(AbsVal::Top, |&site| {
                let size = ctx.sites[site as usize].size;
                AbsVal::Ptr(AbsPtr {
                    site,
                    off: Itv::point(0),
                    win_lo: 0,
                    win_hi: i64::try_from(size).unwrap_or(POS_INF - 1),
                    via: VIA_NONE,
                })
            });
            set(state, dst.0, v);
        }
        Op::Free { .. } | Op::Store { .. } => {}
        Op::Gep { dst, .. } => {
            let v = transfer_gep(ctx, state, op);
            set(state, dst.0, v);
        }
        Op::Load { dst, .. } => set(state, dst.0, AbsVal::Top),
        Op::Call { dst, args, .. } => {
            if let Some(d) = dst {
                let v = match ctx.call_ret.get(&(bi, oi)) {
                    Some(CallRet::Fresh {
                        site,
                        off,
                        win_lo,
                        win_hi,
                    }) => AbsVal::Ptr(AbsPtr {
                        site: *site,
                        off: *off,
                        win_lo: *win_lo,
                        win_hi: *win_hi,
                        via: via_pack(bi, oi),
                    }),
                    Some(CallRet::ParamRel {
                        param,
                        off,
                        nlo,
                        nhi,
                    }) => apply_param_rel(state, args, bi, oi, *param, *off, *nlo, *nhi),
                    None => AbsVal::Top,
                };
                set(state, d.0, v);
            }
        }
        Op::CallExt { dst, .. } => {
            // Extern calls never gain a summary: legacy code is opaque.
            if let Some(d) = dst {
                set(state, d.0, AbsVal::Top);
            }
        }
    }
}

/// Applies a `ParamRel` return summary at a call site: the returned
/// pointer lives in the same site as argument `param`, shifted by `off`.
/// Its window is the argument's window intersected with the callee's
/// narrowing `[nlo, nhi)` translated from entry-relative to
/// site-relative coordinates — conservatively over every possible entry
/// offset, so the promise holds whichever concrete offset flowed in.
#[allow(clippy::too_many_arguments)]
fn apply_param_rel(
    state: &[AbsVal],
    args: &[Operand],
    bi: usize,
    oi: usize,
    param: u32,
    off: Itv,
    nlo: Option<i64>,
    nhi: Option<i64>,
) -> AbsVal {
    let Some(AbsVal::Ptr(p)) = args.get(param as usize).map(|a| abs_of(state, *a)) else {
        return AbsVal::Top;
    };
    let (win_lo, win_hi) = if nlo.is_none() && nhi.is_none() {
        // The callee never narrowed the bounds: the argument's own
        // window survives the round trip.
        (p.win_lo, p.win_hi)
    } else if p.off.is_finite() {
        (
            nlo.map_or(p.win_lo, |n| p.win_lo.max(p.off.hi.saturating_add(n))),
            nhi.map_or(p.win_hi, |n| p.win_hi.min(p.off.lo.saturating_add(n))),
        )
    } else {
        // Narrowing relative to an unbounded entry offset pins nothing.
        (0, 0)
    };
    AbsVal::Ptr(AbsPtr {
        site: p.site,
        off: p.off.add(off),
        win_lo,
        win_hi,
        via: via_pack(bi, oi),
    })
}

pub(crate) fn successors(term: &Terminator) -> impl Iterator<Item = usize> {
    let (a, b) = match term {
        Terminator::Jmp(t) => (Some(*t), None),
        Terminator::Br {
            then_bb, else_bb, ..
        } => (Some(*then_bb), Some(*else_bb)),
        Terminator::Ret(_) => (None, None),
    };
    a.into_iter().chain(b)
}

/// Back-edge targets via iterative DFS (gray-node edges).
fn loop_heads(f: &Function) -> Vec<bool> {
    let nb = f.blocks.len();
    let mut heads = vec![false; nb];
    // 0 = white, 1 = gray (on stack), 2 = black.
    let mut color = vec![0u8; nb];
    let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
    color[0] = 1;
    stack.push((0, successors(&f.blocks[0].term).collect()));
    while let Some((node, succs)) = stack.last_mut() {
        if let Some(s) = succs.pop() {
            match color[s] {
                0 => {
                    color[s] = 1;
                    let next: Vec<usize> = successors(&f.blocks[s].term).collect();
                    stack.push((s, next));
                }
                1 => heads[s] = true,
                _ => {}
            }
        } else {
            color[*node] = 2;
            stack.pop();
        }
    }
    heads
}

/// Number of joins at a loop head before widening kicks in.
const WIDEN_THRESHOLD: u32 = 2;

/// Fixpoint iteration budget per function; exceeded means the function
/// simply gets no elision (sound, and in practice unreachable for the
/// small CFGs the builder and generator emit).
fn fixpoint_fuel(nb: usize) -> usize {
    1_000 + 400 * nb
}

pub(crate) type State = Vec<AbsVal>;

/// The register an op defines, if any.
fn def_reg(op: &Op) -> Option<u32> {
    match op {
        Op::Bin { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Alloca { dst, .. }
        | Op::Malloc { dst, .. }
        | Op::Gep { dst, .. }
        | Op::Load { dst, .. }
        | Op::AddrOfGlobal { dst, .. } => Some(dst.0),
        Op::Call { dst, .. } | Op::CallExt { dst, .. } => dst.map(|r| r.0),
        Op::Free { .. } | Op::Store { .. } => None,
    }
}

/// Drops 0 from an interval when it sits at an end; `None` when the
/// interval *is* `[0, 0]` (the non-zero assumption is infeasible).
fn refine_nonzero(i: Itv) -> Option<Itv> {
    if i.lo == 0 && i.hi == 0 {
        return None;
    }
    let mut r = i;
    if r.lo == 0 {
        r.lo = 1;
    }
    if r.hi == 0 {
        r.hi = -1;
    }
    Some(r)
}

/// Finds the comparison a branch condition observes: the *last*
/// definition of `r` in block `bi` must be a comparison `Bin`, and its
/// register operands must not be redefined between that op and the
/// terminator (so their end-of-block abstract values are the compared
/// ones).
fn cond_cmp(f: &Function, bi: usize, r: u32) -> Option<(BinOp, Operand, Operand)> {
    let ops = &f.blocks[bi].ops;
    let (at, op, a, b) = ops.iter().enumerate().rev().find_map(|(i, op)| {
        (def_reg(op) == Some(r)).then_some(())?;
        match op {
            Op::Bin { op, a, b, .. }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Ult | BinOp::Ule
                ) =>
            {
                Some((i, *op, *a, *b))
            }
            _ => None,
        }
    })?;
    let stable = |o: Operand| match o {
        Operand::Imm(_) => true,
        Operand::Reg(x) => x.0 != r && ops[at + 1..].iter().all(|op| def_reg(op) != Some(x.0)),
    };
    (stable(a) && stable(b)).then_some((op, a, b))
}

/// The interval backing an operand for refinement purposes: immediates
/// are points; integer registers their interval; anything else (pointer
/// or unknown) is `TOP` — every raw 64-bit value satisfies it.
fn refine_itv(state: &State, o: Operand) -> Itv {
    match abs_of(state, o) {
        AbsVal::Int(i) => i,
        _ => Itv::TOP,
    }
}

/// Writes a refined interval back to a register operand — but never over
/// a pointer abstraction (the numeric fact is true of its raw value but
/// would destroy the pointer proof state).
fn write_refined(state: &mut State, o: Operand, i: Itv) {
    if let Operand::Reg(r) = o {
        if let Some(slot) = state.get_mut(r.0 as usize) {
            if !matches!(slot, AbsVal::Ptr(_)) {
                *slot = AbsVal::Int(i);
            }
        }
    }
}

/// Refines `(a, b)` under `a <op> b` being `taken`; `None` when the
/// constraint is unsatisfiable (the edge is infeasible). Unsigned
/// comparisons refine only when the relevant side is provably
/// non-negative, where unsigned and signed order agree.
fn refine_pair(op: BinOp, a: Itv, b: Itv, taken: bool) -> Option<(Itv, Itv)> {
    let below = |x: i64| Itv { lo: NEG_INF, hi: x };
    let above = |x: i64| Itv { lo: x, hi: POS_INF };
    let dec = |x: i64| x.saturating_sub(1);
    let inc = |x: i64| x.saturating_add(1);
    match (op, taken) {
        (BinOp::Lt, true) => Some((
            if b.hi == POS_INF {
                a
            } else {
                a.meet(below(dec(b.hi)))?
            },
            if a.lo == NEG_INF {
                b
            } else {
                b.meet(above(inc(a.lo)))?
            },
        )),
        (BinOp::Lt, false) => Some((a.meet(above(b.lo))?, b.meet(below(a.hi))?)),
        (BinOp::Le, true) => Some((a.meet(below(b.hi))?, b.meet(above(a.lo))?)),
        (BinOp::Le, false) => Some((
            if b.lo == NEG_INF {
                a
            } else {
                a.meet(above(inc(b.lo)))?
            },
            if a.hi == POS_INF {
                b
            } else {
                b.meet(below(dec(a.hi)))?
            },
        )),
        (BinOp::Ult, true) => {
            let a2 = if b.lo >= 0 {
                a.meet(Itv {
                    lo: 0,
                    hi: dec(b.hi),
                })?
            } else {
                a
            };
            let b2 = if a2.lo >= 0 && a2.lo != POS_INF {
                b.meet(above(inc(a2.lo)))?
            } else {
                b
            };
            Some((a2, b2))
        }
        (BinOp::Ult, false) if a.lo >= 0 && b.lo >= 0 => {
            Some((a.meet(above(b.lo))?, b.meet(below(a.hi))?))
        }
        (BinOp::Ule, true) => {
            let a2 = if b.lo >= 0 {
                a.meet(Itv { lo: 0, hi: b.hi })?
            } else {
                a
            };
            let b2 = if a2.lo >= 0 { b.meet(above(a2.lo))? } else { b };
            Some((a2, b2))
        }
        (BinOp::Ule, false) if a.lo >= 0 && b.lo >= 0 => {
            Some((a.meet(above(inc(b.lo)))?, b.meet(below(dec(a.hi)))?))
        }
        (BinOp::Eq, true) | (BinOp::Ne, false) => {
            let m = a.meet(b)?;
            Some((m, m))
        }
        (BinOp::Eq, false) | (BinOp::Ne, true) => {
            // Shave a singleton off a matching end; anything subtler
            // is not expressible as one interval.
            let shave = |x: Itv, s: Itv| -> Option<Itv> {
                let Some(v) = s.singleton() else {
                    return Some(x);
                };
                let mut r = x;
                if r.lo == v {
                    r.lo = inc(v);
                }
                if r.hi == v {
                    r.hi = dec(v);
                }
                (r.lo <= r.hi).then_some(r)
            };
            Some((shave(a, b)?, shave(b, a)?))
        }
        _ => Some((a, b)),
    }
}

/// The state flowing along one edge of a `Br`: the out-state refined by
/// the branch condition (and by the comparison that produced it, when
/// identifiable). `None` means the edge is statically infeasible.
fn refine_branch(
    f: &Function,
    bi: usize,
    out: &State,
    cond: Operand,
    taken: bool,
) -> Option<State> {
    let r = match cond {
        Operand::Imm(c) => return ((c != 0) == taken).then(|| out.clone()),
        Operand::Reg(r) => r,
    };
    let mut st = out.clone();
    if let Some(AbsVal::Int(i)) = st.get(r.0 as usize).copied() {
        let refined = if taken {
            refine_nonzero(i)?
        } else {
            i.meet(Itv::point(0))?
        };
        st[r.0 as usize] = AbsVal::Int(refined);
    }
    if let Some((op, a, b)) = cond_cmp(f, bi, r.0) {
        let (na, nb) = refine_pair(op, refine_itv(&st, a), refine_itv(&st, b), taken)?;
        write_refined(&mut st, a, na);
        write_refined(&mut st, b, nb);
    }
    Some(st)
}

/// Runs the fixpoint from an entry state built out of the
/// inter-procedural parameter facts (`entry_facts` may be shorter than
/// the parameter list; missing facts mean `Top`).
pub(crate) fn run_fixpoint(
    ctx: &FuncCtx<'_>,
    f: &Function,
    entry_facts: &[ParamFact],
) -> Option<Vec<Option<State>>> {
    let nb = f.blocks.len();
    let heads = loop_heads(f);
    let mut entry: State = vec![AbsVal::Top; f.num_regs as usize];
    for (k, fact) in entry_facts.iter().enumerate().take(f.params as usize) {
        if k >= entry.len() {
            break;
        }
        entry[k] = match *fact {
            ParamFact::Top => AbsVal::Top,
            ParamFact::Int(i) => AbsVal::Int(i),
            ParamFact::Window { lo, hi } => AbsVal::Ptr(AbsPtr {
                site: u32::try_from(k).unwrap_or(u32::MAX),
                off: Itv::point(0),
                win_lo: lo,
                win_hi: hi,
                via: VIA_NONE,
            }),
        };
    }
    let mut inset: Vec<Option<State>> = vec![None; nb];
    inset[0] = Some(entry);
    let mut joins = vec![0u32; nb];
    let mut work = vec![0usize];
    let mut fuel = fixpoint_fuel(nb);
    while let Some(bi) = work.pop() {
        if fuel == 0 {
            return None;
        }
        fuel -= 1;
        let Some(start) = inset[bi].clone() else {
            continue;
        };
        let mut out = start;
        for (oi, op) in f.blocks[bi].ops.iter().enumerate() {
            transfer_op(ctx, &mut out, bi, oi, op);
        }
        // Per-edge states: `Br` edges get condition-refined copies;
        // statically infeasible edges propagate nothing.
        let edges: Vec<(usize, State)> = match &f.blocks[bi].term {
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => [(*then_bb, true), (*else_bb, false)]
                .into_iter()
                .filter_map(|(s, taken)| refine_branch(f, bi, &out, *cond, taken).map(|st| (s, st)))
                .collect(),
            term => successors(term).map(|s| (s, out.clone())).collect(),
        };
        for (s, edge) in edges {
            if s >= nb {
                continue;
            }
            let changed = match &inset[s] {
                None => {
                    inset[s] = Some(edge);
                    true
                }
                Some(old) => {
                    joins[s] += 1;
                    let widen = heads[s] && joins[s] > WIDEN_THRESHOLD;
                    let mut next = Vec::with_capacity(old.len());
                    for (o, n) in old.iter().zip(&edge) {
                        let j = join_val(*o, *n);
                        next.push(if widen { widen_val(*o, j) } else { j });
                    }
                    if Some(&next) != inset[s].as_ref() {
                        inset[s] = Some(next);
                        true
                    } else {
                        false
                    }
                }
            };
            if changed {
                work.push(s);
            }
        }
    }
    Some(inset)
}

/// Syntactic register census used by the discharge fixpoint.
#[derive(Clone, Default)]
struct RegCensus {
    defs: u32,
    /// The `(block, op)` of the defining GEP when `defs == 1` and the
    /// single def is a GEP.
    gep_def: Option<(usize, usize)>,
    /// Uses as the pointer operand of a load/store.
    access_uses: Vec<(usize, usize)>,
    /// Uses as the base of another GEP.
    gep_base_uses: Vec<(usize, usize)>,
    /// Every other read (operand of arithmetic, stored value, call
    /// argument, return value, branch condition, free, GEP index…).
    other_uses: u32,
    total_uses: u32,
}

fn census(f: &Function) -> Vec<RegCensus> {
    let mut regs: Vec<RegCensus> = vec![RegCensus::default(); f.num_regs as usize];
    let other = |regs: &mut Vec<RegCensus>, o: &Operand| {
        if let Operand::Reg(r) = o {
            if let Some(c) = regs.get_mut(r.0 as usize) {
                c.other_uses += 1;
                c.total_uses += 1;
            }
        }
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            match op {
                Op::Bin { a, b, .. } => {
                    other(&mut regs, a);
                    other(&mut regs, b);
                }
                Op::Mov { a, .. } => other(&mut regs, a),
                Op::Alloca { .. } | Op::AddrOfGlobal { .. } => {}
                Op::Malloc { count, .. } => other(&mut regs, count),
                Op::Free { ptr } => other(&mut regs, ptr),
                Op::Gep { base, steps, .. } => {
                    if let Operand::Reg(r) = base {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.gep_base_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                    for s in steps {
                        if let GepStep::Index(o) = s {
                            other(&mut regs, o);
                        }
                    }
                }
                Op::Load { ptr, .. } => {
                    if let Operand::Reg(r) = ptr {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.access_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                }
                Op::Store { ptr, val, .. } => {
                    if let Operand::Reg(r) = ptr {
                        if let Some(c) = regs.get_mut(r.0 as usize) {
                            c.access_uses.push((bi, oi));
                            c.total_uses += 1;
                        }
                    }
                    other(&mut regs, val);
                }
                Op::Call { args, .. } | Op::CallExt { args, .. } => {
                    for a in args {
                        other(&mut regs, a);
                    }
                }
            }
            // Defs.
            let def = match op {
                Op::Bin { dst, .. }
                | Op::Mov { dst, .. }
                | Op::Alloca { dst, .. }
                | Op::Malloc { dst, .. }
                | Op::Gep { dst, .. }
                | Op::Load { dst, .. }
                | Op::AddrOfGlobal { dst, .. } => Some(dst.0),
                Op::Call { dst, .. } | Op::CallExt { dst, .. } => dst.map(|r| r.0),
                Op::Free { .. } | Op::Store { .. } => None,
            };
            if let Some(d) = def {
                if let Some(c) = regs.get_mut(d as usize) {
                    c.defs += 1;
                    c.gep_def = if c.defs == 1 && matches!(op, Op::Gep { .. }) {
                        Some((bi, oi))
                    } else {
                        None
                    };
                }
            }
        }
        match &block.term {
            Terminator::Br { cond, .. } => other(&mut regs, cond),
            Terminator::Ret(Some(v)) => other(&mut regs, v),
            _ => {}
        }
    }
    regs
}

fn classify(ctx: &FuncCtx<'_>, v: AbsVal, access_size: u64) -> AccessClass {
    let AbsVal::Ptr(p) = v else {
        return AccessClass::Unknown;
    };
    let Some(site) = ctx.sites.get(p.site as usize) else {
        return AccessClass::Unknown;
    };
    let a = i64::try_from(access_size).unwrap_or(POS_INF - 1);
    if p.off.is_finite() && p.off.lo >= p.win_lo && p.off.hi.saturating_add(a) <= p.win_hi {
        return AccessClass::ProvenIn;
    }
    // Synthetic sites stand for foreign objects (a `Param` site's size
    // is a placeholder zero): never lint them as provably OOB.
    if site.kind.synthetic() {
        return AccessClass::Unknown;
    }
    let size = i64::try_from(site.size).unwrap_or(POS_INF - 1);
    let below = p.off.hi != POS_INF && p.off.hi < 0;
    let above = p.off.lo != NEG_INF && p.off.lo.saturating_add(a) > size;
    if below || above {
        return AccessClass::ProvenOob;
    }
    AccessClass::Unknown
}

/// Whether a GEP result is provably inside its own window — meaning the
/// tag path's poison reclassification at this GEP must yield `Valid`
/// (`classify_addr` is `Valid` strictly below the upper bound).
fn gep_in_window(v: AbsVal) -> bool {
    let AbsVal::Ptr(p) = v else { return false };
    p.off.is_finite() && p.off.lo >= p.win_lo && p.off.hi < p.win_hi
}

fn analyze_function(
    program: &Program,
    fi: usize,
    f: &Function,
    ip: &Interproc,
    report: &mut AnalysisReport,
    attr: &mut SummaryAttr,
) {
    let ctx = build_ctx(program, f, &ip.rets);
    let entry = ip.entries.get(fi).map_or(&[][..], Vec::as_slice);
    let Some(inset) = run_fixpoint(&ctx, f, entry) else {
        return;
    };
    // Site id → the call op that created it, for fresh-return sites.
    let call_of_site: BTreeMap<u32, (usize, usize)> = ctx
        .site_at
        .iter()
        .filter(|&(_, &s)| {
            ctx.sites
                .get(s as usize)
                .is_some_and(|site| site.kind == SiteKind::FreshCall)
        })
        .map(|(&at, &s)| (s, at))
        .collect();
    // Whether a proof through `v` rests on the inter-procedural layer:
    // either the site itself is synthetic (parameter window, summarized
    // fresh return) or the value flowed through a summary application
    // (`via` breadcrumb).
    let summaryish = |v: AbsVal| -> bool {
        let AbsVal::Ptr(p) = v else { return false };
        p.via != VIA_NONE
            || ctx
                .sites
                .get(p.site as usize)
                .is_some_and(|s| s.kind.synthetic())
    };

    // Replay every reachable block from its stable in-state, recording
    // per-access classifications and per-GEP window proofs, each tagged
    // with whether the proof rests on a synthetic (inter-procedural)
    // site.
    let mut access_class: BTreeMap<(usize, usize), (AccessClass, bool)> = BTreeMap::new();
    let mut gep_ok: BTreeMap<(usize, usize), (bool, bool)> = BTreeMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let Some(start) = &inset[bi] else { continue };
        let mut state = start.clone();
        for (oi, op) in block.ops.iter().enumerate() {
            match op {
                Op::Load { ptr, ty, .. } | Op::Store { ptr, ty, .. } => {
                    let size = u64::from(ctx.types.size_of(*ty));
                    let v = abs_of(&state, *ptr);
                    let class = classify(&ctx, v, size);
                    let via_summary = class == AccessClass::ProvenIn && summaryish(v);
                    if via_summary {
                        if let AbsVal::Ptr(p) = v {
                            match ctx.sites.get(p.site as usize).map(|s| s.kind) {
                                Some(SiteKind::Param) => {
                                    *attr.param_hits.entry(fi).or_default() += 1;
                                }
                                Some(SiteKind::FreshCall) => {
                                    if let Some(&(cbi, coi)) = call_of_site.get(&p.site) {
                                        *attr.call_hits.entry((fi, cbi, coi)).or_default() += 1;
                                    }
                                }
                                _ if p.via != VIA_NONE => {
                                    let (cbi, coi) =
                                        ((p.via >> 16) as usize, (p.via & 0xffff) as usize);
                                    *attr.call_hits.entry((fi, cbi, coi)).or_default() += 1;
                                }
                                _ => {}
                            }
                        }
                    }
                    access_class.insert((bi, oi), (class, via_summary));
                }
                Op::Gep { .. } => {
                    let v = transfer_gep(&ctx, &state, op);
                    let ok = gep_in_window(v);
                    gep_ok.insert((bi, oi), (ok, ok && summaryish(v)));
                }
                _ => {}
            }
            transfer_op(&ctx, &mut state, bi, oi, op);
        }
    }

    // Lints + counts.
    for (&(bi, oi), &(class, _)) in &access_class {
        match class {
            AccessClass::ProvenIn => report.proven_in += 1,
            AccessClass::Unknown => report.unknown += 1,
            AccessClass::ProvenOob => {
                report.proven_oob += 1;
                let what = match &f.blocks[bi].ops[oi] {
                    Op::Store { .. } => "store",
                    _ => "load",
                };
                report.lints.push(Diagnostic {
                    code: codes::PROVEN_OOB,
                    func: f.name.clone(),
                    loc: DiagLoc::Op { block: bi, op: oi },
                    message: format!("{what} is provably out of bounds on every path"),
                });
            }
        }
    }

    // Discharge fixpoint for tag-update elision: a GEP destination is
    // discharged when it is defined exactly once, its result is provably
    // inside its window, and every use is either a proven (check-elided)
    // access or the base of another discharged GEP. Discharged pointers'
    // tags and bounds are never consulted, so skipping the tag update
    // cannot change any observable behavior.
    let regs = census(f);
    let mut discharged = vec![false; regs.len()];
    for (r, c) in regs.iter().enumerate() {
        discharged[r] = c.defs == 1
            && c.gep_def
                .is_some_and(|at| gep_ok.get(&at).is_some_and(|&(ok, _)| ok))
            && c.other_uses == 0
            && c.access_uses
                .iter()
                .all(|at| matches!(access_class.get(at), Some((AccessClass::ProvenIn, _))));
    }
    loop {
        let mut changed = false;
        for r in 0..regs.len() {
            if !discharged[r] {
                continue;
            }
            let all_bases_ok =
                regs[r]
                    .gep_base_uses
                    .iter()
                    .all(|&(bi, oi)| match f.blocks[bi].ops.get(oi) {
                        Some(Op::Gep { dst, .. }) => {
                            discharged.get(dst.0 as usize).copied().unwrap_or(false)
                        }
                        _ => false,
                    });
            if !all_bases_ok {
                discharged[r] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Emit the plan.
    let plan = &mut report.elision.funcs[fi];
    for (&(bi, oi), &(class, via_summary)) in &access_class {
        if class == AccessClass::ProvenIn {
            plan[bi][oi].check = true;
            plan[bi][oi].summary |= via_summary;
        }
    }
    for (r, c) in regs.iter().enumerate() {
        if discharged[r] {
            if let Some((bi, oi)) = c.gep_def {
                plan[bi][oi].tag_update = true;
                plan[bi][oi].summary |= gep_ok.get(&(bi, oi)).is_some_and(|&(_, syn)| syn);
            }
        }
    }
    // Promote elision: a pointer load whose destination is never read
    // anywhere in the function gets no promote — matching the paper's
    // compiler, which hoists promote at use sites only.
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            if let Op::Load { dst, .. } = op {
                if regs.get(dst.0 as usize).is_some_and(|c| c.total_uses == 0) {
                    plan[bi][oi].promote = true;
                }
            }
        }
    }
}
