//! Static analysis for the In-Fat Pointer reproduction.
//!
//! Three layers over the `ifp-compiler` mini-IR:
//!
//! 1. **Verifier** ([`verify`]) — a strict, panic-free well-formedness
//!    pass that collects *every* defect (def-before-use along paths, CFG
//!    integrity, GEP/type-table consistency, call and extern arity) as
//!    stable-coded diagnostics (`IFP-V001`…) with function/block/op
//!    coordinates, renderable as JSONL for tooling.
//! 2. **Interval analysis** ([`analyze`]) — an abstract interpretation
//!    over `base + [lo, hi]` offset intervals with windowed pointers,
//!    classifying each load/store as provably in-bounds, provably
//!    out-of-bounds (lint `IFP-A001`), or unknown, and deriving an
//!    [`ElisionPlan`](ifp_compiler::ElisionPlan) the VM uses under
//!    `elide_checks` to skip bounds checks, GEP tag updates, and dead
//!    promotes — removing modeled work without ever removing a
//!    detection. Branch-condition refinement at loop exits doubles as
//!    the monotonic-induction range proof: `i*stride+base` GEP chains
//!    with provable trip bounds are discharged per-iteration.
//! 3. **Inter-procedural summaries** (the `interproc` pass inside
//!    [`analyze`]) — a bottom-up call-graph pass computing per-function
//!    return summaries (fresh allocation vs. parameter-relative
//!    pointer) and a top-down pass joining argument windows into
//!    per-parameter entry facts, so bounds-passing helpers no longer
//!    force `Unknown`. Applications that narrow a previously-unknown
//!    access are surfaced as `IFP-A002` diagnostics. Recursion and
//!    extern calls fall back to `Top`.
//!
//! The crate deliberately depends only on `ifp-compiler`: the VM consumes
//! the plan, the fuzz oracle re-checks it differentially, and the bench
//! tables report it, all from the outside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
mod interproc;
pub mod interval;
pub mod verify;

pub use diag::{codes, to_jsonl, DiagLoc, Diagnostic};
pub use interval::{analyze, elision_plan, AccessClass, AnalysisReport};
pub use verify::{ext_arity, verify};

/// Version stamp of the analysis semantics: bumped whenever the derived
/// elision plan for a given program can change (new proof power, lattice
/// or summary changes). `ifp-plancache` mixes it into its artifact keys
/// so cached plans never outlive the analysis that justified them.
pub const ANALYSIS_FINGERPRINT: u64 = 3;

/// The plan → specialization handoff: builds the instrumentation plan
/// an instrumented run executes under, folding in the elision plan when
/// `elide` is set. This is the single producer both execution tiers and
/// the jit fusion pass key their specialization off, so "what the
/// analyzer proved" can never diverge between consumers.
#[must_use]
pub fn instr_plan(program: &ifp_compiler::ir::Program, elide: bool) -> ifp_compiler::InstrPlan {
    if elide {
        ifp_compiler::InstrPlan::build_elided(program, &elision_plan(program))
    } else {
        ifp_compiler::InstrPlan::build(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifp_compiler::ir::{Block, Function, GepStep, Op, Operand, Program, Reg, Terminator};
    use ifp_compiler::ProgramBuilder;

    fn listing_like_program() -> Program {
        // main: a = alloca [8 x i64]; for i in 0..8 { a[i] = i }; load a[3]
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 8);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        f.for_loop(0, 8, |f, i| {
            let slot = f.index_addr(a, arr, i);
            f.store(slot, i, i64t);
        });
        let slot = f.index_addr(a, arr, 3);
        let v = f.load(slot, i64t);
        f.ret(Some(v.into()));
        p.finish_func(f);
        p.build()
    }

    #[test]
    fn verifier_is_clean_on_builder_output() {
        let program = listing_like_program();
        assert!(verify(&program).is_empty());
    }

    #[test]
    fn constant_index_access_is_proven_and_elided() {
        let program = listing_like_program();
        let report = analyze(&program);
        assert!(report.verifier.is_empty());
        assert!(report.lints.is_empty());
        // The a[3] load (constant index into a window-sized array) is
        // provable; the loop body store needs widening and stays unknown
        // or proven depending on precision, but at least one access must
        // be proven.
        assert!(report.proven_in >= 1, "report: {report:?}");
        let counts = report.elision.counts();
        assert!(counts.checks >= 1);
        assert!(counts.tag_updates >= 1, "counts: {counts:?}");
    }

    #[test]
    fn oob_constant_access_is_linted_not_elided() {
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 4);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let bad = f.index_addr(a, arr, 9);
        let v = f.load(bad, i64t);
        f.ret(Some(v.into()));
        p.finish_func(f);
        let program = p.build();
        let report = analyze(&program);
        assert_eq!(report.proven_oob, 1);
        assert_eq!(report.lints.len(), 1);
        assert_eq!(report.lints[0].code, codes::PROVEN_OOB);
        // The OOB access itself keeps its check.
        assert_eq!(report.elision.counts().checks, 0);
    }

    #[test]
    fn unknown_count_malloc_is_never_proven() {
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let mut f = p.func("main", 1);
        let n = f.param(0);
        let buf = f.malloc_n(i64t, n);
        let slot = f.index_addr(buf, i64t, 0);
        f.store(slot, 1, i64t);
        f.ret(None);
        p.finish_func(f);
        // main with a param never gets called with args in practice, but
        // the analysis is per-function and doesn't care.
        let program = p.build();
        let report = analyze(&program);
        assert_eq!(report.proven_in, 0);
        assert_eq!(report.elision.counts().checks, 0);
    }

    #[test]
    fn escaping_gep_is_not_discharged() {
        // The GEP result is passed to a call: its tag is observable, so
        // the tag update must stay.
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 4);
        let mut callee = p.func("sink", 1);
        let q = callee.param(0);
        callee.store(q, 7, i64t);
        callee.ret(None);
        p.finish_func(callee);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let slot = f.index_addr(a, arr, 1);
        f.call_void("sink", vec![slot.into()]);
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        let report = analyze(&program);
        assert_eq!(report.elision.counts().tag_updates, 0);
    }

    #[test]
    fn verifier_reports_all_defects_with_coordinates() {
        // Hand-built malformed function: bad register + bad branch target
        // + use-before-def would be masked by the structural failures.
        let mut program = Program::new();
        let i64t = program.types.int64();
        program.add_func(Function {
            name: "main".to_string(),
            params: 0,
            num_regs: 1,
            blocks: vec![Block {
                ops: vec![
                    Op::Mov {
                        dst: Reg(5),
                        a: Operand::Imm(1),
                    },
                    Op::Load {
                        dst: Reg(0),
                        ptr: Operand::Imm(0),
                        ty: i64t,
                    },
                ],
                term: Terminator::Jmp(9),
            }],
            instrumented: true,
        });
        let diags = verify(&program);
        let codes_found: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes_found.contains(&codes::REG_RANGE), "{diags:?}");
        assert!(codes_found.contains(&codes::BLOCK_RANGE), "{diags:?}");
        let jsonl = to_jsonl(&diags);
        assert!(jsonl.contains("\"func\":\"main\""));
        assert!(jsonl.lines().count() == diags.len());
    }

    #[test]
    fn verifier_flags_use_before_def_on_one_path() {
        // bb0: br 1 -> bb1 (defines r0) or bb2; bb2 reads r0 undefined on
        // the else path.
        let mut program = Program::new();
        program.add_func(Function {
            name: "main".to_string(),
            params: 0,
            num_regs: 1,
            blocks: vec![
                Block {
                    ops: vec![],
                    term: Terminator::Br {
                        cond: Operand::Imm(1),
                        then_bb: 1,
                        else_bb: 2,
                    },
                },
                Block {
                    ops: vec![Op::Mov {
                        dst: Reg(0),
                        a: Operand::Imm(3),
                    }],
                    term: Terminator::Jmp(2),
                },
                Block {
                    ops: vec![],
                    term: Terminator::Ret(Some(Operand::Reg(Reg(0)))),
                },
            ],
            instrumented: true,
        });
        let diags = verify(&program);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, codes::USE_BEFORE_DEF);
    }

    #[test]
    fn verifier_flags_ext_arity() {
        let mut p = ProgramBuilder::new();
        let mut f = p.func("main", 0);
        f.ret(None);
        p.finish_func(f);
        let mut program = p.build();
        // Splice a bad extern call in.
        program.funcs[0].blocks[0].ops.push(Op::CallExt {
            dst: None,
            ext: ifp_compiler::ir::ExtFunc::Memcpy,
            args: vec![Operand::Imm(0)],
        });
        let diags = verify(&program);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::EXT_ARITY);
    }

    #[test]
    fn widening_terminates_on_pointer_chase() {
        // A loop that re-GEPs its own cursor: p = &p[1] forever (by
        // count); offsets widen to +inf and the analysis terminates with
        // nothing proven through the cursor.
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 64);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let cur = f.mov(a);
        f.for_loop(0, 32, |f, _i| {
            let next = f.gep(cur, i64t, vec![GepStep::Index(Operand::Imm(1))]);
            f.assign(cur, next);
            f.store(cur, 5, i64t);
        });
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        let report = analyze(&program);
        // `cur` is multiply-defined and widened: never discharged.
        assert!(report.verifier.is_empty());
    }
}
