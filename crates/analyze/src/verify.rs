//! Layer 1: the strict IR verifier.
//!
//! Unlike [`Program::validate`], which stops at the first defect, the
//! verifier walks the whole program, guards every table lookup (it must
//! never panic on arbitrary malformed IR — fuzz generators feed it), and
//! reports *all* defects as stable-coded [`Diagnostic`]s:
//!
//! - structural: register/block/global/type references in range, GEP
//!   steps consistent with the type table, scalar load/store types,
//!   call arity against both IR and extern signatures;
//! - CFG integrity: every terminator target exists;
//! - dataflow: def-before-use along every path (a must-defined forward
//!   analysis with set intersection at joins — a register is flagged if
//!   *some* reachable path can read it before any write).

use crate::diag::{codes, DiagLoc, Diagnostic};
use ifp_compiler::ir::{Block, ExtFunc, Function, GepStep, Op, Operand, Program, Reg, Terminator};
use ifp_compiler::types::{Type, TypeId, TypeTable};

/// Runs the verifier over the whole program, collecting every diagnostic.
#[must_use]
pub fn verify(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if program.func("main").is_none() {
        diags.push(Diagnostic {
            code: codes::NO_MAIN,
            func: String::new(),
            loc: DiagLoc::Function,
            message: "program has no `main`".to_string(),
        });
    }
    for f in &program.funcs {
        verify_function(program, f, &mut diags);
    }
    diags
}

/// Number of arguments each extern runtime function takes.
#[must_use]
pub fn ext_arity(ext: ExtFunc) -> usize {
    match ext {
        ExtFunc::Memcpy | ExtFunc::Memset => 3,
        ExtFunc::Strlen | ExtFunc::PrintInt => 1,
        ExtFunc::CtypeTable => 0,
    }
}

fn ty_ok(types: &TypeTable, ty: TypeId) -> bool {
    (ty.index() as usize) < types.len()
}

fn verify_function(program: &Program, f: &Function, diags: &mut Vec<Diagnostic>) {
    let before = diags.len();
    let emit = |diags: &mut Vec<Diagnostic>, code: &'static str, loc: DiagLoc, message: String| {
        diags.push(Diagnostic {
            code,
            func: f.name.clone(),
            loc,
            message,
        });
    };

    if f.blocks.is_empty() {
        emit(
            diags,
            codes::NO_BLOCKS,
            DiagLoc::Function,
            "function has no blocks".to_string(),
        );
        return;
    }
    if f.params > f.num_regs {
        emit(
            diags,
            codes::REG_RANGE,
            DiagLoc::Function,
            format!(
                "function declares {} params but only {} registers",
                f.params, f.num_regs
            ),
        );
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            verify_op(program, f, bi, oi, op, diags, &emit);
        }
        verify_terminator(f, bi, &block.term, diags, &emit);
    }

    // The dataflow pass assumes in-range indices; skip it when the
    // structural pass already failed for this function.
    if diags.len() == before {
        verify_def_before_use(f, diags, &emit);
    }
}

#[allow(clippy::too_many_lines)]
fn verify_op(
    program: &Program,
    f: &Function,
    bi: usize,
    oi: usize,
    op: &Op,
    diags: &mut Vec<Diagnostic>,
    emit: &impl Fn(&mut Vec<Diagnostic>, &'static str, DiagLoc, String),
) {
    let loc = DiagLoc::Op { block: bi, op: oi };
    let types = &program.types;
    let check_reg = |diags: &mut Vec<Diagnostic>, r: Reg| {
        if r.0 >= f.num_regs {
            emit(
                diags,
                codes::REG_RANGE,
                loc,
                format!("register {r} out of range ({} regs)", f.num_regs),
            );
        }
    };
    let check_opnd = |diags: &mut Vec<Diagnostic>, o: &Operand| {
        if let Operand::Reg(r) = o {
            check_reg(diags, *r);
        }
    };
    let check_ty = |diags: &mut Vec<Diagnostic>, ty: TypeId| -> bool {
        if ty_ok(types, ty) {
            true
        } else {
            emit(
                diags,
                codes::TYPE_RANGE,
                loc,
                format!("type {ty} out of range ({} types)", types.len()),
            );
            false
        }
    };

    match op {
        Op::Bin { dst, a, b, .. } => {
            check_reg(diags, *dst);
            check_opnd(diags, a);
            check_opnd(diags, b);
        }
        Op::Mov { dst, a } => {
            check_reg(diags, *dst);
            check_opnd(diags, a);
        }
        Op::Alloca { dst, ty, count } => {
            check_reg(diags, *dst);
            check_ty(diags, *ty);
            if *count == 0 {
                emit(
                    diags,
                    codes::ALLOCA_ZERO,
                    loc,
                    "alloca of zero objects".to_string(),
                );
            }
        }
        Op::Malloc { dst, ty, count, .. } => {
            check_reg(diags, *dst);
            check_ty(diags, *ty);
            check_opnd(diags, count);
        }
        Op::Free { ptr } => check_opnd(diags, ptr),
        Op::Gep {
            dst,
            base,
            base_ty,
            steps,
        } => {
            check_reg(diags, *dst);
            check_opnd(diags, base);
            if !check_ty(diags, *base_ty) {
                return;
            }
            let mut ty = *base_ty;
            for (si, step) in steps.iter().enumerate() {
                match step {
                    GepStep::Field(i) => match types.get(ty) {
                        Type::Struct { fields, name, .. } => {
                            if *i as usize >= fields.len() {
                                emit(
                                    diags,
                                    codes::GEP_TYPE,
                                    loc,
                                    format!(
                                        "step {si}: field {i} out of range \
                                         (struct {name} has {} fields)",
                                        fields.len()
                                    ),
                                );
                                return;
                            }
                            ty = fields[*i as usize].ty;
                        }
                        other => {
                            emit(
                                diags,
                                codes::GEP_TYPE,
                                loc,
                                format!("step {si}: Field step on non-struct type {other:?}"),
                            );
                            return;
                        }
                    },
                    GepStep::Index(o) => {
                        check_opnd(diags, o);
                        if let Type::Array { elem, .. } = types.get(ty) {
                            ty = *elem;
                        }
                    }
                }
            }
        }
        Op::Load { dst, ptr, ty } => {
            check_reg(diags, *dst);
            check_opnd(diags, ptr);
            if check_ty(diags, *ty)
                && !matches!(types.get(*ty), Type::Int { .. } | Type::Ptr { .. })
            {
                emit(
                    diags,
                    codes::NON_SCALAR_ACCESS,
                    loc,
                    format!("load of non-scalar type {}", types.name_of(*ty)),
                );
            }
        }
        Op::Store { ptr, val, ty } => {
            check_opnd(diags, ptr);
            check_opnd(diags, val);
            if check_ty(diags, *ty)
                && !matches!(types.get(*ty), Type::Int { .. } | Type::Ptr { .. })
            {
                emit(
                    diags,
                    codes::NON_SCALAR_ACCESS,
                    loc,
                    format!("store of non-scalar type {}", types.name_of(*ty)),
                );
            }
        }
        Op::AddrOfGlobal { dst, global } => {
            check_reg(diags, *dst);
            if *global >= program.globals.len() {
                emit(
                    diags,
                    codes::GLOBAL_RANGE,
                    loc,
                    format!(
                        "global {global} out of range ({} globals)",
                        program.globals.len()
                    ),
                );
            }
        }
        Op::Call { dst, func, args } => {
            if let Some(d) = dst {
                check_reg(diags, *d);
            }
            for a in args {
                check_opnd(diags, a);
            }
            match program.func(func) {
                None => emit(
                    diags,
                    codes::UNKNOWN_CALLEE,
                    loc,
                    format!("unknown function `{func}`"),
                ),
                Some(callee) => {
                    if callee.params as usize != args.len() {
                        emit(
                            diags,
                            codes::CALL_ARITY,
                            loc,
                            format!("`{func}` takes {} args, got {}", callee.params, args.len()),
                        );
                    }
                }
            }
        }
        Op::CallExt { dst, ext, args } => {
            if let Some(d) = dst {
                check_reg(diags, *d);
            }
            for a in args {
                check_opnd(diags, a);
            }
            if args.len() != ext_arity(*ext) {
                emit(
                    diags,
                    codes::EXT_ARITY,
                    loc,
                    format!(
                        "`{}` takes {} args, got {}",
                        ext.name(),
                        ext_arity(*ext),
                        args.len()
                    ),
                );
            }
        }
    }
}

fn verify_terminator(
    f: &Function,
    bi: usize,
    term: &Terminator,
    diags: &mut Vec<Diagnostic>,
    emit: &impl Fn(&mut Vec<Diagnostic>, &'static str, DiagLoc, String),
) {
    let loc = DiagLoc::Terminator { block: bi };
    let check_block = |diags: &mut Vec<Diagnostic>, b: usize| {
        if b >= f.blocks.len() {
            emit(
                diags,
                codes::BLOCK_RANGE,
                loc,
                format!("block {b} out of range ({} blocks)", f.blocks.len()),
            );
        }
    };
    match term {
        Terminator::Jmp(b) => check_block(diags, *b),
        Terminator::Br {
            cond,
            then_bb,
            else_bb,
        } => {
            if let Operand::Reg(r) = cond {
                if r.0 >= f.num_regs {
                    emit(
                        diags,
                        codes::REG_RANGE,
                        loc,
                        format!("register {r} out of range ({} regs)", f.num_regs),
                    );
                }
            }
            check_block(diags, *then_bb);
            check_block(diags, *else_bb);
        }
        Terminator::Ret(v) => {
            if let Some(Operand::Reg(r)) = v {
                if r.0 >= f.num_regs {
                    emit(
                        diags,
                        codes::REG_RANGE,
                        loc,
                        format!("register {r} out of range ({} regs)", f.num_regs),
                    );
                }
            }
        }
    }
}

/// Dense register bitset for the must-defined dataflow.
#[derive(Clone, PartialEq, Eq)]
struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    fn new(n: u32) -> Self {
        RegSet {
            words: vec![0; (n as usize).div_ceil(64)],
        }
    }

    fn insert(&mut self, r: u32) {
        if let Some(w) = self.words.get_mut(r as usize / 64) {
            *w |= 1 << (r % 64);
        }
    }

    fn contains(&self, r: u32) -> bool {
        self.words
            .get(r as usize / 64)
            .is_some_and(|w| w & (1 << (r % 64)) != 0)
    }

    fn intersect(&mut self, other: &RegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }
}

/// Reads of one op, in evaluation order.
fn op_reads(op: &Op, out: &mut Vec<u32>) {
    let mut opnd = |o: &Operand| {
        if let Operand::Reg(r) = o {
            out.push(r.0);
        }
    };
    match op {
        Op::Bin { a, b, .. } => {
            opnd(a);
            opnd(b);
        }
        Op::Mov { a, .. } => opnd(a),
        Op::Alloca { .. } | Op::AddrOfGlobal { .. } => {}
        Op::Malloc { count, .. } => opnd(count),
        Op::Free { ptr } => opnd(ptr),
        Op::Gep { base, steps, .. } => {
            opnd(base);
            for s in steps {
                if let GepStep::Index(o) = s {
                    opnd(o);
                }
            }
        }
        Op::Load { ptr, .. } => opnd(ptr),
        Op::Store { ptr, val, .. } => {
            opnd(ptr);
            opnd(val);
        }
        Op::Call { args, .. } | Op::CallExt { args, .. } => {
            for a in args {
                opnd(a);
            }
        }
    }
}

/// The register an op writes, if any.
fn op_def(op: &Op) -> Option<u32> {
    match op {
        Op::Bin { dst, .. }
        | Op::Mov { dst, .. }
        | Op::Alloca { dst, .. }
        | Op::Malloc { dst, .. }
        | Op::Gep { dst, .. }
        | Op::Load { dst, .. }
        | Op::AddrOfGlobal { dst, .. } => Some(dst.0),
        Op::Call { dst, .. } | Op::CallExt { dst, .. } => dst.map(|r| r.0),
        Op::Free { .. } | Op::Store { .. } => None,
    }
}

fn term_reads(term: &Terminator, out: &mut Vec<u32>) {
    match term {
        Terminator::Br {
            cond: Operand::Reg(r),
            ..
        }
        | Terminator::Ret(Some(Operand::Reg(r))) => out.push(r.0),
        _ => {}
    }
}

fn successors(term: &Terminator) -> impl Iterator<Item = usize> {
    let (a, b) = match term {
        Terminator::Jmp(t) => (Some(*t), None),
        Terminator::Br {
            then_bb, else_bb, ..
        } => (Some(*then_bb), Some(*else_bb)),
        Terminator::Ret(_) => (None, None),
    };
    a.into_iter().chain(b)
}

/// Must-defined forward dataflow: a register is flagged when a reachable
/// path can read it before any write. Join is set intersection, so a
/// register defined on only one side of a diamond is *not* considered
/// defined after the join. Unreachable blocks are skipped — they never
/// execute.
fn verify_def_before_use(
    f: &Function,
    diags: &mut Vec<Diagnostic>,
    emit: &impl Fn(&mut Vec<Diagnostic>, &'static str, DiagLoc, String),
) {
    let nb = f.blocks.len();
    let mut inset: Vec<Option<RegSet>> = vec![None; nb];
    let mut entry = RegSet::new(f.num_regs);
    for p in 0..f.params.min(f.num_regs) {
        entry.insert(p);
    }
    inset[0] = Some(entry);

    let block_out = |block: &Block, start: &RegSet| -> RegSet {
        let mut defs = start.clone();
        for op in &block.ops {
            if let Some(d) = op_def(op) {
                defs.insert(d);
            }
        }
        defs
    };

    let mut work = vec![0usize];
    while let Some(bi) = work.pop() {
        let Some(start) = inset[bi].clone() else {
            continue;
        };
        let out = block_out(&f.blocks[bi], &start);
        for s in successors(&f.blocks[bi].term) {
            let changed = match &mut inset[s] {
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
                Some(old) => {
                    let prev = old.clone();
                    old.intersect(&out);
                    *old != prev
                }
            };
            if changed {
                work.push(s);
            }
        }
    }

    // Report pass: replay each reachable block from its stable in-set.
    let mut reads = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let Some(start) = &inset[bi] else { continue };
        let mut defs = start.clone();
        for (oi, op) in block.ops.iter().enumerate() {
            reads.clear();
            op_reads(op, &mut reads);
            for &r in &reads {
                if !defs.contains(r) {
                    emit(
                        diags,
                        codes::USE_BEFORE_DEF,
                        DiagLoc::Op { block: bi, op: oi },
                        format!("register r{r} may be read before definition"),
                    );
                    // Treat as defined afterwards to avoid cascades.
                    defs.insert(r);
                }
            }
            if let Some(d) = op_def(op) {
                defs.insert(d);
            }
        }
        reads.clear();
        term_reads(&block.term, &mut reads);
        for &r in &reads {
            if !defs.contains(r) {
                emit(
                    diags,
                    codes::USE_BEFORE_DEF,
                    DiagLoc::Terminator { block: bi },
                    format!("register r{r} may be read before definition"),
                );
            }
        }
    }
}
