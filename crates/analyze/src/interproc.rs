//! Layer 3: inter-procedural summaries over the call graph.
//!
//! Two passes over the strongly-connected components of the call graph:
//!
//! 1. **Bottom-up** (callees first) — one [`RetSummary`] per function:
//!    does it return a *fresh* allocation (a pointer whose window the
//!    caller can adopt wholesale) or a pointer *derived from a
//!    parameter* (offset-shifted, window inherited from the argument)?
//!    Computed by running the intra-procedural fixpoint with sentinel
//!    parameter windows and joining the abstract values reaching every
//!    `Ret`.
//! 2. **Top-down** (callers first) — one [`ParamFact`] vector per
//!    function: the join over *every* call site of what is known about
//!    each argument — a pointer window (intersection across callers) or
//!    an integer interval (hull across callers).
//!
//! Soundness fallbacks are structural: any function in a non-trivial
//! SCC (or with a self-call) is *recursive* and gets `Top` everywhere;
//! extern calls never produce or consume summaries; a function whose
//! caller-side fixpoint runs out of fuel poisons all its callees to
//! `Top`. Windows only ever shrink under joins, so a summarized window
//! is a subset of every runtime bound it can meet — eliding a check
//! proven through one can never mask a violation.

use ifp_compiler::ir::{Function, Op, Program, Terminator};

use crate::interval::{abs_of, build_ctx, run_fixpoint, transfer_op, AbsVal, Itv, SiteKind};

/// Sentinel half-width for bottom-up parameter windows: wide enough to
/// never constrain a real program offset, far enough from `i64` range
/// that saturating interval arithmetic cannot counterfeit it.
pub(crate) const SENT: i64 = 1 << 40;

/// What is known about one argument of a function, joined over every
/// call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ParamFact {
    /// Nothing (or conflicting things) — the analysis starts the
    /// register at `Top`.
    Top,
    /// Every caller passes an integer in this interval (hull).
    Int(Itv),
    /// Every caller passes a pointer with at least the window
    /// `[lo, hi)` around the passed address (intersection).
    Window { lo: i64, hi: i64 },
}

/// How a function's returned value relates to its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RetSummary {
    /// Unknown / recursive / extern-tainted / non-pointer.
    Top,
    /// A fresh allocation of `size` bytes: the returned pointer sits at
    /// `off` inside it with window `[win_lo, win_hi)`.
    Fresh {
        size: u64,
        off: Itv,
        win_lo: i64,
        win_hi: i64,
    },
    /// The pointer argument `param`, shifted by `off` bytes, its window
    /// optionally narrowed to the entry-relative `[nlo, nhi)`.
    ParamRel {
        param: u32,
        off: Itv,
        nlo: Option<i64>,
        nhi: Option<i64>,
    },
}

/// The inter-procedural facts the intra-procedural layer consumes.
pub(crate) struct Interproc {
    /// Per function: one fact per parameter (may be shorter — missing
    /// means `Top`).
    pub(crate) entries: Vec<Vec<ParamFact>>,
    /// Per function: the return summary.
    pub(crate) rets: Vec<RetSummary>,
    /// Per function: in a call cycle (SCC of size > 1, or self-call).
    /// Exercised by the soundness-edge unit tests.
    #[allow(dead_code)]
    pub(crate) recursive: Vec<bool>,
}

/// Call-graph successors of a function: indices of every direct callee.
fn callees(program: &Program, f: &Function) -> Vec<usize> {
    let mut out = Vec::new();
    for block in &f.blocks {
        for op in &block.ops {
            if let Op::Call { func, .. } = op {
                if let Some(ci) = program.func_id(func) {
                    out.push(ci);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Iterative Tarjan SCC over the call graph. Returns the SCCs in
/// emission order — every SCC appears *after* none of its callees'
/// SCCs, i.e. callees first — plus the recursion flags.
fn sccs(program: &Program) -> (Vec<Vec<usize>>, Vec<bool>) {
    let n = program.funcs.len();
    let adj: Vec<Vec<usize>> = program.funcs.iter().map(|f| callees(program, f)).collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    let mut recursive = vec![false; n];
    for comp in &comps {
        if comp.len() > 1 {
            for &v in comp {
                recursive[v] = true;
            }
        }
    }
    for (v, a) in adj.iter().enumerate() {
        if a.contains(&v) {
            recursive[v] = true;
        }
    }
    (comps, recursive)
}

/// Joins two return summaries (the lattice is flat above the two
/// structured shapes): same-shape summaries merge pointwise — offsets
/// hull, windows intersect — anything else collapses to `Top`.
fn join_ret(a: RetSummary, b: RetSummary) -> RetSummary {
    use RetSummary::{Fresh, ParamRel, Top};
    match (a, b) {
        (
            Fresh {
                size: sa,
                off: oa,
                win_lo: la,
                win_hi: ha,
            },
            Fresh {
                size: sb,
                off: ob,
                win_lo: lb,
                win_hi: hb,
            },
        ) if sa == sb => Fresh {
            size: sa,
            off: Itv::hull(oa, ob),
            win_lo: la.max(lb),
            win_hi: ha.min(hb),
        },
        (
            ParamRel {
                param: pa,
                off: oa,
                nlo: la,
                nhi: ha,
            },
            ParamRel {
                param: pb,
                off: ob,
                nlo: lb,
                nhi: hb,
            },
        ) if pa == pb => ParamRel {
            param: pa,
            off: Itv::hull(oa, ob),
            // Narrowings are *promises of accessibility*: intersect
            // (`None` = the caller's own window, which the `Some` side's
            // applied bound already subsumes at application time).
            nlo: match (la, lb) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
            nhi: match (ha, hb) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
        },
        _ => Top,
    }
}

/// Extracts a return summary from the abstract value reaching a `Ret`.
fn ret_candidate(ctx: &crate::interval::FuncCtx<'_>, v: AbsVal) -> RetSummary {
    let AbsVal::Ptr(p) = v else {
        return RetSummary::Top;
    };
    if !p.off.is_finite() {
        return RetSummary::Top;
    }
    let Some(site) = ctx.sites.get(p.site as usize) else {
        return RetSummary::Top;
    };
    match site.kind {
        SiteKind::Param => RetSummary::ParamRel {
            param: p.site,
            off: p.off,
            // A still-sentinel window end means "inherited from the
            // caller unchanged"; anything tighter is a real narrowing.
            nlo: (p.win_lo > -(SENT / 2)).then_some(p.win_lo),
            nhi: (p.win_hi < SENT / 2).then_some(p.win_hi),
        },
        SiteKind::Malloc | SiteKind::FreshCall => RetSummary::Fresh {
            size: site.size,
            off: p.off,
            win_lo: p.win_lo,
            win_hi: p.win_hi,
        },
        // Allocas dangle past the return; globals lose their identity
        // across the function boundary (the caller has its own site).
        SiteKind::Alloca | SiteKind::Global => RetSummary::Top,
    }
}

/// Joins one call site's argument value into the callee's entry facts.
fn join_entry(slot: &mut Option<ParamFact>, v: AbsVal) {
    let fact = match v {
        AbsVal::Ptr(p) if p.off.is_finite() => ParamFact::Window {
            lo: p.win_lo.saturating_sub(p.off.lo),
            hi: p.win_hi.saturating_sub(p.off.hi),
        },
        // A pointer at an unbounded offset still *is* a pointer, but
        // promises nothing: the empty window.
        AbsVal::Ptr(_) => ParamFact::Window { lo: 0, hi: 0 },
        AbsVal::Int(i) => ParamFact::Int(i),
        AbsVal::Top => ParamFact::Top,
    };
    *slot = Some(match slot.take() {
        None => fact,
        Some(old) => match (old, fact) {
            (ParamFact::Int(a), ParamFact::Int(b)) => ParamFact::Int(Itv::hull(a, b)),
            (ParamFact::Window { lo: la, hi: ha }, ParamFact::Window { lo: lb, hi: hb }) => {
                ParamFact::Window {
                    lo: la.max(lb),
                    hi: ha.min(hb),
                }
            }
            _ => ParamFact::Top,
        },
    });
}

/// Computes the inter-procedural facts for a whole program.
pub(crate) fn compute(program: &Program) -> Interproc {
    let n = program.funcs.len();
    let (comps, recursive) = sccs(program);
    let mut rets = vec![RetSummary::Top; n];

    // Bottom-up: summarize every analyzable, non-recursive function in
    // callees-first order, so `build_ctx` sees final callee summaries.
    let order: Vec<usize> = comps.iter().flatten().copied().collect();
    for &fi in &order {
        let f = &program.funcs[fi];
        if recursive[fi] || !f.instrumented || f.blocks.is_empty() {
            continue;
        }
        let ctx = build_ctx(program, f, &rets);
        let sentinel: Vec<ParamFact> = (0..f.params)
            .map(|_| ParamFact::Window {
                lo: -SENT,
                hi: SENT,
            })
            .collect();
        let Some(inset) = run_fixpoint(&ctx, f, &sentinel) else {
            continue; // stays Top
        };
        let mut summary: Option<RetSummary> = None;
        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(start) = &inset[bi] else { continue };
            if let Terminator::Ret(Some(v)) = &block.term {
                let mut state = start.clone();
                for (oi, op) in block.ops.iter().enumerate() {
                    transfer_op(&ctx, &mut state, bi, oi, op);
                }
                let cand = ret_candidate(&ctx, abs_of(&state, *v));
                summary = Some(match summary {
                    None => cand,
                    Some(old) => join_ret(old, cand),
                });
            }
        }
        rets[fi] = summary.unwrap_or(RetSummary::Top);
    }

    // Top-down: harvest argument facts at every reachable call site, in
    // callers-first order so each caller's own entry is final first.
    // `None` = never called so far; the program entry (`main`, called
    // by the host with no analyzable arguments) is pinned to Top.
    let mut entries: Vec<Option<Vec<Option<ParamFact>>>> = vec![None; n];
    let mut poisoned = vec![false; n];
    if let Some(mi) = program.func_id("main") {
        poisoned[mi] = true;
    }
    for &gi in order.iter().rev() {
        let g = &program.funcs[gi];
        if g.blocks.is_empty() {
            continue;
        }
        let entry: Vec<ParamFact> = if recursive[gi] || poisoned[gi] {
            vec![ParamFact::Top; g.params as usize]
        } else {
            resolve_entry(entries[gi].as_deref(), g.params as usize)
        };
        let ctx = build_ctx(program, g, &rets);
        let Some(inset) = run_fixpoint(&ctx, g, &entry) else {
            // Fuel ran out: no per-site facts, so every callee must
            // assume the worst.
            for ci in callees(program, g) {
                poisoned[ci] = true;
            }
            continue;
        };
        for (bi, block) in g.blocks.iter().enumerate() {
            let Some(start) = &inset[bi] else { continue };
            let mut state = start.clone();
            for (oi, op) in block.ops.iter().enumerate() {
                if let Op::Call { func, args, .. } = op {
                    if let Some(ci) = program.func_id(func) {
                        let callee = &program.funcs[ci];
                        let slots =
                            entries[ci].get_or_insert_with(|| vec![None; callee.params as usize]);
                        for (k, a) in args.iter().enumerate().take(slots.len()) {
                            join_entry(&mut slots[k], abs_of(&state, *a));
                        }
                    }
                }
                transfer_op(&ctx, &mut state, bi, oi, op);
            }
        }
    }

    let entries: Vec<Vec<ParamFact>> = (0..n)
        .map(|fi| {
            let f = &program.funcs[fi];
            if recursive[fi] || poisoned[fi] {
                vec![ParamFact::Top; f.params as usize]
            } else {
                resolve_entry(entries[fi].as_deref(), f.params as usize)
            }
        })
        .collect();

    // Recursive functions must not advertise summaries either.
    let rets = rets
        .into_iter()
        .enumerate()
        .map(|(fi, r)| if recursive[fi] { RetSummary::Top } else { r })
        .collect();

    Interproc {
        entries,
        rets,
        recursive,
    }
}

/// Turns harvested (possibly absent) slots into final entry facts:
/// never-called functions get all-`Top` (they may still be analyzed
/// directly, e.g. by tests or dead code).
fn resolve_entry(slots: Option<&[Option<ParamFact>]>, params: usize) -> Vec<ParamFact> {
    match slots {
        None => vec![ParamFact::Top; params],
        Some(s) => (0..params)
            .map(|k| s.get(k).copied().flatten().unwrap_or(ParamFact::Top))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use ifp_compiler::ir::Operand;
    use ifp_compiler::ProgramBuilder;

    /// helper(p) = p + 8; caller passes an in-bounds array slice and the
    /// summary lets the caller-side accesses stay provable.
    fn summary_program() -> Program {
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 8);
        let mut h = p.func("shift", 1);
        let q = h.param(0);
        let r = h.gep(
            q,
            i64t,
            vec![ifp_compiler::ir::GepStep::Index(Operand::Imm(1))],
        );
        h.ret(Some(r.into()));
        p.finish_func(h);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let s = f.call("shift", vec![a.into()]);
        f.store(s, 7, i64t);
        f.ret(None);
        p.finish_func(f);
        p.build()
    }

    #[test]
    fn param_relative_return_summary_is_computed_and_applied() {
        let program = summary_program();
        let ip = compute(&program);
        let si = program.func_id("shift").expect("shift");
        match ip.rets[si] {
            RetSummary::ParamRel { param: 0, off, .. } => {
                assert_eq!((off.lo, off.hi), (8, 8), "shift adds one i64");
            }
            ref other => panic!("expected ParamRel, got {other:?}"),
        }
        let report = analyze(&program);
        // The store through the summarized return is proven — and
        // attributed to the summary.
        assert!(report.proven_in >= 1, "{report:?}");
        assert!(report.summary_hits >= 1, "{report:?}");
        assert!(
            report
                .summaries
                .iter()
                .any(|d| d.code == crate::codes::SUMMARY_APPLIED),
            "{report:?}"
        );
    }

    #[test]
    fn callee_accesses_prove_through_caller_windows() {
        // sum8(p) reads p[0..8]; the only caller passes an 8-slot array,
        // so every read inside sum8 is proven via its entry window.
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 8);
        let mut h = p.func("sum8", 1);
        let q = h.param(0);
        let acc = h.mov(0i64);
        h.for_loop(0, 8, |h, i| {
            let slot = h.index_addr(q, i64t, i);
            let v = h.load(slot, i64t);
            let next = h.add(acc, v);
            h.assign(acc, next);
        });
        h.ret(Some(acc.into()));
        p.finish_func(h);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let s = f.call("sum8", vec![a.into()]);
        f.ret(Some(s.into()));
        p.finish_func(f);
        let program = p.build();
        let ip = compute(&program);
        let hi = program.func_id("sum8").expect("sum8");
        match ip.entries[hi][0] {
            ParamFact::Window { lo, hi } => {
                assert_eq!((lo, hi), (0, 64), "full 8×8-byte window");
            }
            ref other => panic!("expected Window, got {other:?}"),
        }
        let report = analyze(&program);
        assert!(report.summary_hits >= 1, "{report:?}");
    }

    #[test]
    fn recursive_function_falls_back_to_top() {
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 4);
        let mut h = p.func("selfcall", 1);
        let q = h.param(0);
        let r = h.call("selfcall", vec![q.into()]);
        h.ret(Some(r.into()));
        p.finish_func(h);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        f.call_void("selfcall", vec![a.into()]);
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        let ip = compute(&program);
        let si = program.func_id("selfcall").expect("selfcall");
        assert!(ip.recursive[si]);
        assert_eq!(ip.rets[si], RetSummary::Top);
        assert_eq!(ip.entries[si], vec![ParamFact::Top]);
    }

    #[test]
    fn mutually_recursive_functions_fall_back_to_top() {
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let mut a = p.func("even", 1);
        let x = a.param(0);
        let r = a.call("odd", vec![x.into()]);
        a.ret(Some(r.into()));
        p.finish_func(a);
        let mut b = p.func("odd", 1);
        let y = b.param(0);
        let r = b.call("even", vec![y.into()]);
        b.ret(Some(r.into()));
        p.finish_func(b);
        let mut f = p.func("main", 0);
        let buf = f.alloca(i64t);
        f.call_void("even", vec![buf.into()]);
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        let ip = compute(&program);
        for name in ["even", "odd"] {
            let fi = program.func_id(name).expect(name);
            assert!(ip.recursive[fi], "{name} must be flagged recursive");
            assert_eq!(ip.rets[fi], RetSummary::Top, "{name}");
            assert_eq!(ip.entries[fi], vec![ParamFact::Top], "{name}");
        }
    }

    #[test]
    fn extern_calls_never_gain_a_summary() {
        // A function whose return flows through memcpy's destination
        // register must stay Top: extern effects are opaque.
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 4);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        let b = f.alloca(arr);
        f.memcpy(a, b, 32);
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        // No `Call` ops at all — compute() must not invent summaries,
        // and the CallExt transfer is Top by construction.
        let ip = compute(&program);
        for r in &ip.rets {
            // main returns nothing → Top.
            assert_eq!(*r, RetSummary::Top);
        }
        let report = analyze(&program);
        assert!(report.verifier.is_empty(), "{report:?}");
    }

    #[test]
    fn widening_with_induction_proofs_terminates() {
        // A triangular double loop over a summarized callee: the head
        // widens, the branch refinement narrows the body, and the whole
        // analysis must terminate with a sound (possibly empty) plan.
        let mut p = ProgramBuilder::new();
        let i64t = p.types.int64();
        let arr = p.types.array(i64t, 16);
        let mut h = p.func("touch", 1);
        let q = h.param(0);
        h.store(q, 1, i64t);
        h.ret(None);
        p.finish_func(h);
        let mut f = p.func("main", 0);
        let a = f.alloca(arr);
        f.for_loop(0, 16, |f, i| {
            f.for_loop(0, 16, |f, j| {
                let s = f.add(i, j);
                let m = f.bin(ifp_compiler::ir::BinOp::Rem, s, 16i64);
                let slot = f.index_addr(a, i64t, m);
                f.store(slot, 3, i64t);
            });
            let slot = f.index_addr(a, i64t, i);
            f.call_void("touch", vec![slot.into()]);
        });
        f.ret(None);
        p.finish_func(f);
        let program = p.build();
        let report = analyze(&program);
        assert!(report.verifier.is_empty(), "{report:?}");
        assert!(report.lints.is_empty(), "{report:?}");
        // The modulo-masked inner store is provable: induction proof
        // fired inside a widened loop, and analysis still terminated.
        assert!(report.proven_in >= 1, "{report:?}");
    }
}
